//! Translation validation of register allocation.
//!
//! A forward *must*-analysis over the allocated function proves, on every
//! control-flow path, that each instruction reads the value the original
//! (pre-allocation) function computed at that point. The abstract state
//! maps every storage location — physical register, spill slot, global
//! home cell — to the set of original values it is known to hold:
//!
//! * `Sym(s)` — the current value of original symbolic register `s`;
//! * `Global(g)` — the current value global `g` holds in the original
//!   execution (a moving target across matched stores and calls).
//!
//! The join at CFG merges is set intersection (a fact survives only if it
//! holds on *all* incoming edges), calls kill every caller-saved register
//! of the machine model and reset aliased globals, and unvisited blocks
//! sit at ⊤.
//!
//! Allocator-introduced instructions (`SpillLoad`, `SpillStore`, physical
//! `Copy`/`LoadImm`) are *ghosts*: they move value sets between locations
//! but match no original instruction. Symmetrically, original `Copy` and
//! `LoadImm` instructions are treated as deleted — allocators may elide
//! copies (§5.1) and rematerialise constants in different places, so
//! constant flow is tracked by value instead: `consts` records which
//! locations are known to hold which bit pattern, and `curconst` records
//! which original symbolics currently *are* a known constant. A §5.5
//! predefined-memory load is matched only when the allocator kept it
//! (deleted otherwise), decided by a one-instruction lookahead that is
//! unambiguous because a predefined global has exactly one access.
//!
//! Everything else must align one-to-one with an identically-shaped
//! original instruction; a misalignment is reported as `T001` and every
//! unproven read as `T002`/`T003`/`T004` with `b<block>:<inst>`
//! coordinates into the allocated function.

use std::collections::{BTreeMap, BTreeSet};

use regalloc_ir::{
    Address, BlockId, Cfg, Dst, Function, GlobalId, Inst, Loc, LoopInfo, Operand, PhysReg, SlotId,
    SymId, Width,
};
use regalloc_machine::Machine;

use crate::diag::{self, Diagnostic};

/// A storage location tracked by the analysis. Spill slots coalesced with
/// a global's home location (§5.5) canonicalise to [`Key::Global`] so the
/// slot and the global are one cell, as they are in memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Key {
    /// A physical register.
    Reg(PhysReg),
    /// A spill slot with its own stack cell.
    Slot(u32),
    /// A global's home memory cell.
    Global(GlobalId),
}

/// Abstract state at one program point.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct AbsState {
    /// Original values each location is proven to hold (absent = none).
    vals: BTreeMap<Key, BTreeSet<u32>>,
    /// Bit pattern (value, width) a location is proven to hold.
    consts: BTreeMap<Key, (u64, Width)>,
    /// Original symbolics whose *current* value is a known constant.
    curconst: BTreeMap<u32, (u64, Width)>,
}

impl AbsState {
    fn holds(&self, k: Key, v: u32) -> bool {
        self.vals.get(&k).is_some_and(|s| s.contains(&v))
    }

    /// Remove value `v` from every location (its def went stale).
    fn kill_val(&mut self, v: u32) {
        self.vals.retain(|_, set| {
            set.remove(&v);
            !set.is_empty()
        });
    }

    /// Add `v` to every location already holding `of`.
    fn alias_val(&mut self, of: u32, v: u32) {
        for set in self.vals.values_mut() {
            if set.contains(&of) {
                set.insert(v);
            }
        }
    }

    /// Add `v` to every location proven to hold bit pattern `c`.
    fn alias_const(&mut self, c: (u64, Width), v: u32) {
        let keys: Vec<Key> = self
            .consts
            .iter()
            .filter(|&(_, cc)| *cc == c)
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            self.vals.entry(k).or_default().insert(v);
        }
    }

    fn set_cell(&mut self, k: Key, set: BTreeSet<u32>, c: Option<(u64, Width)>) {
        if set.is_empty() {
            self.vals.remove(&k);
        } else {
            self.vals.insert(k, set);
        }
        match c {
            Some(c) => {
                self.consts.insert(k, c);
            }
            None => {
                self.consts.remove(&k);
            }
        }
    }
}

/// Must-join: a fact survives only if it holds in both states.
fn join(a: &AbsState, b: &AbsState) -> AbsState {
    let mut vals = BTreeMap::new();
    for (k, sa) in &a.vals {
        if let Some(sb) = b.vals.get(k) {
            let inter: BTreeSet<u32> = sa.intersection(sb).copied().collect();
            if !inter.is_empty() {
                vals.insert(*k, inter);
            }
        }
    }
    let consts = a
        .consts
        .iter()
        .filter(|(k, c)| b.consts.get(k) == Some(c))
        .map(|(k, c)| (*k, *c))
        .collect();
    let curconst = a
        .curconst
        .iter()
        .filter(|(s, c)| b.curconst.get(s) == Some(c))
        .map(|(s, c)| (*s, *c))
        .collect();
    AbsState {
        vals,
        consts,
        curconst,
    }
}

/// One element of a block's precomputed original/allocated alignment.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Original instruction elided by the allocator (copy, constant load,
    /// or §5.5 predefined-memory load).
    DeletedOrig(usize),
    /// Allocator-introduced instruction with no original counterpart.
    GhostAlloc(usize),
    /// Original instruction `oi` implemented by allocated instruction `ai`.
    Matched(usize, usize),
}

/// Result of a combined validation + lint run.
pub struct Analysis {
    /// Translation-validation errors (`T001`–`T004`), sorted canonically.
    pub errors: Vec<Diagnostic>,
    /// Quality lints (`L001`–`L005`), sorted canonically.
    pub lints: Vec<Diagnostic>,
}

/// Run the static validator and the quality lints over one allocation.
///
/// `orig` is the pre-allocation (symbolic) function, `alloc` the
/// allocated rewrite of it. The caller is expected to have run
/// `verify_allocated` first; this analysis proves the *semantic* claim
/// that `alloc` computes what `orig` computes, on every path.
pub fn analyze<M: Machine + ?Sized>(m: &M, orig: &Function, alloc: &Function) -> Analysis {
    let v = Validator::new(m, orig, alloc);
    let mut errors = Vec::new();
    let mut lints = v.syntactic_lints();
    match v.dataflow() {
        Ok((mut e, mut l)) => {
            errors.append(&mut e);
            lints.append(&mut l);
        }
        Err(d) => errors.push(d),
    }
    diag::sort_diagnostics(&mut errors);
    diag::sort_diagnostics(&mut lints);
    Analysis { errors, lints }
}

/// Translation-validate only: empty means `alloc` is proven to compute
/// `orig`'s values on every path.
pub fn validate<M: Machine + ?Sized>(m: &M, orig: &Function, alloc: &Function) -> Vec<Diagnostic> {
    analyze(m, orig, alloc).errors
}

/// Quality lints only.
pub fn lint_allocation<M: Machine + ?Sized>(
    m: &M,
    orig: &Function,
    alloc: &Function,
) -> Vec<Diagnostic> {
    analyze(m, orig, alloc).lints
}

struct Validator<'a, M: Machine + ?Sized> {
    m: &'a M,
    orig: &'a Function,
    alloc: &'a Function,
    cfg: Cfg,
    /// Value-index base for `Global` values (`Sym(s)` occupies `0..ns`).
    ns: u32,
    def_count: Vec<u32>,
    gaccess: Vec<u32>,
}

impl<'a, M: Machine + ?Sized> Validator<'a, M> {
    fn new(m: &'a M, orig: &'a Function, alloc: &'a Function) -> Validator<'a, M> {
        let mut def_count = vec![0u32; orig.num_syms()];
        let mut gaccess = vec![0u32; orig.globals().len()];
        for (_, _, inst) in orig.insts() {
            if let Some(s) = inst.sym_def() {
                def_count[s.index()] += 1;
            }
            match inst {
                Inst::Load {
                    addr: Address::Global(g),
                    ..
                }
                | Inst::Store {
                    addr: Address::Global(g),
                    ..
                } => gaccess[*g as usize] += 1,
                _ => {}
            }
        }
        Validator {
            m,
            orig,
            alloc,
            cfg: Cfg::new(alloc),
            ns: orig.num_syms() as u32,
            def_count,
            gaccess,
        }
    }

    fn vs(&self, s: SymId) -> u32 {
        s.0
    }

    fn vg(&self, g: GlobalId) -> u32 {
        self.ns + g
    }

    fn key_of_slot(&self, s: SlotId) -> Key {
        match self.alloc.slot(s).home {
            Some(g) => Key::Global(g),
            None => Key::Slot(s.0),
        }
    }

    /// §5.5 eligibility: may the allocator delete `Load d := Global(g)`?
    fn predef_ok(&self, d: SymId, g: GlobalId) -> bool {
        let gs = self.orig.global(g);
        self.def_count[d.index()] == 1
            && gs.is_param
            && !gs.aliased
            && self.gaccess[g as usize] == 1
    }

    // ---- alignment -----------------------------------------------------

    fn align_block(&self, b: BlockId) -> Result<Vec<Step>, Diagnostic> {
        let ob = &self.orig.block(b).insts;
        let ab = &self.alloc.block(b).insts;
        let mut steps = Vec::with_capacity(ab.len());
        let (mut oi, mut ai) = (0usize, 0usize);
        loop {
            // Deleted original instructions first (the eager ordering is
            // strictly more precise: a ghost copy right after a deleted
            // original copy then transports both values).
            if oi < ob.len() {
                let deletable = match &ob[oi] {
                    Inst::Copy { .. } | Inst::LoadImm { .. } => true,
                    Inst::Load {
                        dst: Loc::Sym(d),
                        addr: Address::Global(g),
                        width,
                    } if self.predef_ok(*d, *g) => {
                        // Deleted unless the allocator kept the load: the
                        // next non-ghost allocated instruction is the same
                        // load. Unambiguous — `g` has exactly one access.
                        !ab[ai..].iter().filter(|i| !is_ghost(i)).take(1).any(|i| {
                            matches!(i, Inst::Load {
                                addr: Address::Global(g2),
                                width: w2,
                                ..
                            } if g2 == g && w2 == width)
                        })
                    }
                    _ => false,
                };
                if deletable {
                    steps.push(Step::DeletedOrig(oi));
                    oi += 1;
                    continue;
                }
            }
            if ai < ab.len() && is_ghost(&ab[ai]) {
                steps.push(Step::GhostAlloc(ai));
                ai += 1;
                continue;
            }
            match (oi < ob.len(), ai < ab.len()) {
                (false, false) => break,
                (true, true) if same_shape(&ob[oi], &ab[ai]) => {
                    steps.push(Step::Matched(oi, ai));
                    oi += 1;
                    ai += 1;
                }
                _ => {
                    let at = ai.min(ab.len().saturating_sub(1));
                    let what = if oi < ob.len() && ai < ab.len() {
                        format!(
                            "allocated `{}` does not implement original `{}`",
                            ab[ai], ob[oi]
                        )
                    } else if oi < ob.len() {
                        format!("original `{}` has no allocated counterpart", ob[oi])
                    } else {
                        format!("allocated `{}` implements no original instruction", ab[ai])
                    };
                    return Err(Diagnostic::error(diag::T_SHAPE_MISMATCH, b.0, at, what)
                        .with_note("cannot align allocated code with the original function"));
                }
            }
        }
        Ok(steps)
    }

    // ---- operand checks ------------------------------------------------

    fn loc_err(&self, b: BlockId, ii: usize, what: String) -> Diagnostic {
        Diagnostic::error(diag::T_WRONG_VALUE, b.0, ii, what)
    }

    #[allow(clippy::too_many_arguments)]
    fn check_use(
        &self,
        st: &AbsState,
        oop: &Operand,
        aop: &Operand,
        w: Width,
        b: BlockId,
        ii: usize,
        ainst: &Inst,
    ) -> Result<(), Diagnostic> {
        match (oop, aop) {
            (Operand::Loc(Loc::Sym(s)), Operand::Loc(Loc::Real(r))) => {
                if st.holds(Key::Reg(*r), self.vs(*s)) {
                    Ok(())
                } else {
                    Err(self.loc_err(
                        b,
                        ii,
                        format!(
                            "{} does not hold v{} on every path in `{ainst}`",
                            self.m.reg_name(*r),
                            s.0
                        ),
                    ))
                }
            }
            (Operand::Loc(Loc::Sym(s)), Operand::Slot(sl)) => {
                if st.holds(self.key_of_slot(*sl), self.vs(*s)) {
                    Ok(())
                } else {
                    Err(self.loc_err(
                        b,
                        ii,
                        format!(
                            "slot s{} does not hold v{} on every path in `{ainst}`",
                            sl.0, s.0
                        ),
                    ))
                }
            }
            (Operand::Imm(i), Operand::Imm(j)) => {
                if w.truncate(*i as u64) == w.truncate(*j as u64) {
                    Ok(())
                } else {
                    Err(Diagnostic::error(
                        diag::T_CONSTANT_MISMATCH,
                        b.0,
                        ii,
                        format!("immediate {j} differs from original {i} in `{ainst}`"),
                    ))
                }
            }
            (Operand::Imm(i), Operand::Loc(Loc::Real(r))) => {
                let c = (w.truncate(*i as u64), w);
                if st.consts.get(&Key::Reg(*r)) == Some(&c) {
                    Ok(())
                } else {
                    Err(Diagnostic::error(
                        diag::T_CONSTANT_MISMATCH,
                        b.0,
                        ii,
                        format!(
                            "{} is not proven to hold constant {i} in `{ainst}`",
                            self.m.reg_name(*r)
                        ),
                    ))
                }
            }
            (Operand::Imm(i), Operand::Slot(sl)) => {
                let c = (w.truncate(*i as u64), w);
                if st.consts.get(&self.key_of_slot(*sl)) == Some(&c) {
                    Ok(())
                } else {
                    Err(Diagnostic::error(
                        diag::T_CONSTANT_MISMATCH,
                        b.0,
                        ii,
                        format!(
                            "slot s{} is not proven to hold constant {i} in `{ainst}`",
                            sl.0
                        ),
                    ))
                }
            }
            _ => Err(Diagnostic::error(
                diag::T_SHAPE_MISMATCH,
                b.0,
                ii,
                format!("operand shape mismatch in `{ainst}`"),
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_addr(
        &self,
        st: &AbsState,
        oa: &Address,
        aa: &Address,
        b: BlockId,
        ii: usize,
        ainst: &Inst,
        errs: &mut Vec<Diagnostic>,
    ) {
        if let (
            Address::Indirect {
                base: ob,
                index: oi,
                ..
            },
            Address::Indirect {
                base: ab,
                index: ai,
                ..
            },
        ) = (oa, aa)
        {
            let pairs = [(*ob, *ab), (oi.map(|(l, _)| l), ai.map(|(l, _)| l))];
            for (ol, al) in pairs {
                if let (Some(Loc::Sym(s)), Some(Loc::Real(r))) = (ol, al) {
                    if !st.holds(Key::Reg(r), self.vs(s)) {
                        errs.push(self.loc_err(
                            b,
                            ii,
                            format!(
                                "address register {} does not hold v{} on every path in `{ainst}`",
                                self.m.reg_name(r),
                                s.0
                            ),
                        ));
                    }
                }
            }
        }
    }

    // ---- transfer functions --------------------------------------------

    /// Writing `r` destroys every allocatable register sharing its bits.
    fn kill_reg(&self, st: &mut AbsState, r: PhysReg) {
        st.vals.remove(&Key::Reg(r));
        st.consts.remove(&Key::Reg(r));
        for &a in self.m.aliases(r) {
            st.vals.remove(&Key::Reg(a));
            st.consts.remove(&Key::Reg(a));
        }
    }

    fn call_clobbers(&self, r: PhysReg) -> bool {
        self.m.is_caller_saved(r) || self.m.aliases(r).iter().any(|&a| self.m.is_caller_saved(a))
    }

    /// Apply the definition of the matched allocated instruction `a`.
    fn write_def(&self, st: &mut AbsState, a: &Inst, set: BTreeSet<u32>, c: Option<(u64, Width)>) {
        if let Some((Loc::Real(r), _)) = a.def() {
            self.kill_reg(st, r);
            st.set_cell(Key::Reg(r), set, c);
        } else if let Inst::Bin {
            dst: Dst::Slot(sl), ..
        }
        | Inst::Un {
            dst: Dst::Slot(sl), ..
        } = a
        {
            // Combined memory use/def (§5.2): the definition lands in the
            // slot's cell.
            st.set_cell(self.key_of_slot(*sl), set, c);
        }
    }

    fn deleted_orig(&self, st: &mut AbsState, o: &Inst) {
        match o {
            Inst::Copy {
                dst: Loc::Sym(d),
                src: Loc::Sym(s),
                ..
            } => {
                if d == s {
                    return;
                }
                let (vd, vsv) = (self.vs(*d), self.vs(*s));
                st.kill_val(vd);
                st.alias_val(vsv, vd);
                match st.curconst.get(&s.0).copied() {
                    Some(c) => {
                        st.curconst.insert(d.0, c);
                    }
                    None => {
                        st.curconst.remove(&d.0);
                    }
                }
            }
            Inst::LoadImm {
                dst: Loc::Sym(d),
                imm,
                width,
            } => {
                let vd = self.vs(*d);
                let c = (width.truncate(*imm as u64), *width);
                st.kill_val(vd);
                st.alias_const(c, vd);
                st.curconst.insert(d.0, c);
            }
            Inst::Load {
                dst: Loc::Sym(d),
                addr: Address::Global(g),
                ..
            } => {
                // Deleted §5.5 predefined load: d's value is g's value.
                let vd = self.vs(*d);
                st.kill_val(vd);
                st.curconst.remove(&d.0);
                st.alias_val(self.vg(*g), vd);
            }
            _ => unreachable!("only copies, constant and predef loads are deletable"),
        }
    }

    fn ghost_alloc(
        &self,
        st: &mut AbsState,
        b: BlockId,
        ii: usize,
        a: &Inst,
        lints: &mut Vec<Diagnostic>,
    ) {
        match a {
            Inst::SpillLoad {
                dst: Loc::Real(r),
                slot,
                ..
            } => {
                let k = self.key_of_slot(*slot);
                let set = st.vals.get(&k).cloned().unwrap_or_default();
                let c = st.consts.get(&k).copied();
                if !set.is_empty() {
                    // L002: is the reloaded value already live in a register?
                    let live_in = st
                        .vals
                        .iter()
                        .find(|(k2, s2)| matches!(k2, Key::Reg(_)) && !s2.is_disjoint(&set));
                    if let Some((Key::Reg(r2), _)) = live_in {
                        lints.push(
                            Diagnostic::warning(
                                diag::L_REDUNDANT_RELOAD,
                                b.0,
                                ii,
                                format!(
                                    "reload from slot s{} of a value already live in {}",
                                    slot.0,
                                    self.m.reg_name(*r2)
                                ),
                            )
                            .with_note("a register-to-register copy would be cheaper"),
                        );
                    }
                }
                self.kill_reg(st, *r);
                st.set_cell(Key::Reg(*r), set, c);
            }
            Inst::SpillStore {
                slot,
                src: Loc::Real(r),
                ..
            } => {
                let set = st.vals.get(&Key::Reg(*r)).cloned().unwrap_or_default();
                let c = st.consts.get(&Key::Reg(*r)).copied();
                st.set_cell(self.key_of_slot(*slot), set, c);
            }
            Inst::Copy {
                dst: Loc::Real(rd),
                src: Loc::Real(rs),
                ..
            } => {
                if rd == rs {
                    lints.push(Diagnostic::warning(
                        diag::L_SELF_MOVE,
                        b.0,
                        ii,
                        format!("copy of {} onto itself", self.m.reg_name(*rd)),
                    ));
                    return;
                }
                let set = st.vals.get(&Key::Reg(*rs)).cloned().unwrap_or_default();
                let c = st.consts.get(&Key::Reg(*rs)).copied();
                self.kill_reg(st, *rd);
                st.set_cell(Key::Reg(*rd), set, c);
            }
            Inst::LoadImm {
                dst: Loc::Real(r),
                imm,
                width,
            } => {
                // Rematerialisation: the register now holds every original
                // symbolic whose current value is this exact bit pattern.
                let c = (width.truncate(*imm as u64), *width);
                let set: BTreeSet<u32> = st
                    .curconst
                    .iter()
                    .filter(|&(_, cc)| *cc == c)
                    .map(|(s, _)| *s)
                    .collect();
                self.kill_reg(st, *r);
                st.set_cell(Key::Reg(*r), set, Some(c));
            }
            _ => {
                // A ghost with a symbolic operand: structurally invalid
                // allocation; verify_allocated reports it. No-op here.
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn matched(
        &self,
        st: &mut AbsState,
        b: BlockId,
        ii: usize,
        o: &Inst,
        a: &Inst,
        errs: &mut Vec<Diagnostic>,
    ) {
        match (o, a) {
            (
                Inst::Load {
                    addr: oa, width: _, ..
                },
                Inst::Load { addr: aa, .. },
            ) => {
                self.check_addr(st, oa, aa, b, ii, a, errs);
                let d = o.sym_def().expect("original load defines a symbolic");
                let vd = self.vs(d);
                let mut set = BTreeSet::from([vd]);
                if let Address::Global(g) = oa {
                    let vgv = self.vg(*g);
                    if st.holds(Key::Global(*g), vgv) {
                        set.insert(vgv);
                    } else {
                        errs.push(
                            Diagnostic::error(
                                diag::T_CLOBBERED_GLOBAL,
                                b.0,
                                ii,
                                format!(
                                    "home cell of global `{}` may be clobbered before `{a}`",
                                    self.alloc.global(*g).name
                                ),
                            )
                            .with_note("a spill overwrote the cell on some path"),
                        );
                    }
                }
                st.kill_val(vd);
                st.curconst.remove(&d.0);
                self.write_def(st, a, set, None);
            }
            (
                Inst::Store {
                    addr: oa,
                    src: os,
                    width: w,
                },
                Inst::Store {
                    addr: aa,
                    src: asrc,
                    ..
                },
            ) => {
                self.check_addr(st, oa, aa, b, ii, a, errs);
                if let Err(d) = self.check_use(st, os, asrc, *w, b, ii, a) {
                    errs.push(d);
                }
                if let Address::Global(g) = oa {
                    // The original value of g becomes the stored value.
                    let vgv = self.vg(*g);
                    st.kill_val(vgv);
                    match os {
                        Operand::Loc(Loc::Sym(s)) => st.alias_val(self.vs(*s), vgv),
                        Operand::Imm(i) => st.alias_const((w.truncate(*i as u64), *w), vgv),
                        _ => {}
                    }
                    let (mut cset, cconst) = match asrc {
                        Operand::Loc(Loc::Real(r)) => (
                            st.vals.get(&Key::Reg(*r)).cloned().unwrap_or_default(),
                            st.consts.get(&Key::Reg(*r)).copied(),
                        ),
                        Operand::Imm(j) => (BTreeSet::new(), Some((w.truncate(*j as u64), *w))),
                        _ => (BTreeSet::new(), None),
                    };
                    cset.insert(vgv);
                    st.set_cell(Key::Global(*g), cset, cconst);
                }
            }
            (
                Inst::Bin {
                    op,
                    lhs: ol,
                    rhs: orr,
                    width: w,
                    ..
                },
                Inst::Bin {
                    lhs: al, rhs: ar, ..
                },
            ) => {
                let straight: Vec<Diagnostic> = [
                    self.check_use(st, ol, al, *w, b, ii, a),
                    self.check_use(st, orr, ar, *w, b, ii, a),
                ]
                .into_iter()
                .filter_map(Result::err)
                .collect();
                if !straight.is_empty() {
                    // The allocators may exchange commutative operands
                    // (§5.1 copy optimisation, immediate-lhs lowering).
                    let swapped_ok = op.is_commutative()
                        && self.check_use(st, ol, ar, *w, b, ii, a).is_ok()
                        && self.check_use(st, orr, al, *w, b, ii, a).is_ok();
                    if !swapped_ok {
                        errs.extend(straight);
                    }
                }
                if let Some(d) = o.sym_def() {
                    let vd = self.vs(d);
                    st.kill_val(vd);
                    st.curconst.remove(&d.0);
                    self.write_def(st, a, BTreeSet::from([vd]), None);
                }
            }
            (
                Inst::Un {
                    src: os, width: w, ..
                },
                Inst::Un { src: asrc, .. },
            ) => {
                if let Err(d) = self.check_use(st, os, asrc, *w, b, ii, a) {
                    errs.push(d);
                }
                if let Some(d) = o.sym_def() {
                    let vd = self.vs(d);
                    st.kill_val(vd);
                    st.curconst.remove(&d.0);
                    self.write_def(st, a, BTreeSet::from([vd]), None);
                }
            }
            (
                Inst::Call {
                    args: oargs,
                    ret: oret,
                    width: w,
                    ..
                },
                Inst::Call { args: aargs, .. },
            ) => {
                for (oa_, aa_) in oargs.iter().zip(aargs) {
                    if let Err(d) = self.check_use(st, oa_, aa_, *w, b, ii, a) {
                        errs.push(d);
                    }
                }
                // The callee destroys caller-saved registers…
                let dead: Vec<Key> = st
                    .vals
                    .keys()
                    .chain(st.consts.keys())
                    .copied()
                    .filter(|k| matches!(k, Key::Reg(r) if self.call_clobbers(*r)))
                    .collect();
                for k in dead {
                    st.vals.remove(&k);
                    st.consts.remove(&k);
                }
                // …and rewrites every aliased global. With validated-equal
                // arguments both executions see the same callee behaviour,
                // so each aliased cell again holds g's (new) current value.
                for gi in 0..self.alloc.globals().len() as u32 {
                    if self.alloc.global(gi).aliased {
                        let vgv = self.vg(gi);
                        st.kill_val(vgv);
                        st.set_cell(Key::Global(gi), BTreeSet::from([vgv]), None);
                    }
                }
                if let Some(Loc::Sym(d)) = oret {
                    let vd = self.vs(*d);
                    st.kill_val(vd);
                    st.curconst.remove(&d.0);
                    self.write_def(st, a, BTreeSet::from([vd]), None);
                }
            }
            (
                Inst::Branch {
                    lhs: ol,
                    rhs: orr,
                    width: w,
                    ..
                },
                Inst::Branch {
                    lhs: al, rhs: ar, ..
                },
            ) => {
                // No operand exchange: the condition is direction-sensitive.
                for (oo, ao) in [(ol, al), (orr, ar)] {
                    if let Err(d) = self.check_use(st, oo, ao, *w, b, ii, a) {
                        errs.push(d);
                    }
                }
            }
            (Inst::Ret { val: Some(ov) }, Inst::Ret { val: Some(av) }) => {
                let w = match ov {
                    Operand::Loc(Loc::Sym(s)) => self.orig.sym_width(*s),
                    _ => Width::B32,
                };
                if let Err(d) = self.check_use(st, ov, av, w, b, ii, a) {
                    errs.push(d);
                }
            }
            (Inst::Ret { val: None }, Inst::Ret { val: None }) | (Inst::Jump { .. }, _) => {}
            _ => unreachable!("matched steps are shape-checked"),
        }
    }

    fn step(
        &self,
        st: &mut AbsState,
        b: BlockId,
        step: &Step,
        errs: &mut Vec<Diagnostic>,
        lints: &mut Vec<Diagnostic>,
    ) {
        match *step {
            Step::DeletedOrig(oi) => self.deleted_orig(st, &self.orig.block(b).insts[oi]),
            Step::GhostAlloc(ai) => {
                self.ghost_alloc(st, b, ai, &self.alloc.block(b).insts[ai], lints)
            }
            Step::Matched(oi, ai) => self.matched(
                st,
                b,
                ai,
                &self.orig.block(b).insts[oi],
                &self.alloc.block(b).insts[ai],
                errs,
            ),
        }
    }

    // ---- driver --------------------------------------------------------

    fn entry_state(&self) -> AbsState {
        let mut st = AbsState::default();
        for g in 0..self.alloc.globals().len() as u32 {
            st.vals.insert(Key::Global(g), BTreeSet::from([self.vg(g)]));
        }
        st
    }

    fn dataflow(&self) -> Result<(Vec<Diagnostic>, Vec<Diagnostic>), Diagnostic> {
        if self.orig.num_blocks() != self.alloc.num_blocks() {
            return Err(Diagnostic::error(
                diag::T_SHAPE_MISMATCH,
                0,
                0,
                format!(
                    "block count changed: {} original, {} allocated",
                    self.orig.num_blocks(),
                    self.alloc.num_blocks()
                ),
            ));
        }
        let n = self.alloc.num_blocks();
        let mut steps: Vec<Vec<Step>> = vec![Vec::new(); n];
        for &b in self.cfg.rpo() {
            steps[b.index()] = self.align_block(b)?;
        }

        // Fixpoint: states only shrink under the intersection join, so
        // straight RPO sweeps converge.
        let mut input: Vec<Option<AbsState>> = vec![None; n];
        input[self.alloc.entry().index()] = Some(self.entry_state());
        let (mut scratch_e, mut scratch_l) = (Vec::new(), Vec::new());
        loop {
            let mut changed = false;
            for &b in self.cfg.rpo() {
                let Some(in_st) = input[b.index()].clone() else {
                    continue;
                };
                let mut st = in_st;
                for s in &steps[b.index()] {
                    self.step(&mut st, b, s, &mut scratch_e, &mut scratch_l);
                }
                scratch_e.clear();
                scratch_l.clear();
                for &sc in self.cfg.succs(b) {
                    let new = match &input[sc.index()] {
                        None => st.clone(),
                        Some(old) => join(old, &st),
                    };
                    if input[sc.index()].as_ref() != Some(&new) {
                        input[sc.index()] = Some(new);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Final pass in block order, emitting diagnostics and in-stream
        // lints from the stable states.
        let (mut errs, mut lints) = (Vec::new(), Vec::new());
        for b in self.alloc.block_ids() {
            let Some(in_st) = &input[b.index()] else {
                continue;
            };
            let mut st = in_st.clone();
            for s in &steps[b.index()] {
                self.step(&mut st, b, s, &mut errs, &mut lints);
            }
        }
        Ok((errs, lints))
    }

    // ---- syntactic lints ----------------------------------------------

    fn syntactic_lints(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();

        // L005: definition register outside the machine's width class.
        for (b, ii, inst) in self.alloc.insts() {
            if let Some((Loc::Real(r), w)) = inst.def() {
                if !self.m.regs_for_width(w).contains(&r) {
                    out.push(Diagnostic::warning(
                        diag::L_UNALLOCATABLE_WIDTH,
                        b.0,
                        ii,
                        format!(
                            "{} cannot hold a {}-bit value in `{inst}`",
                            self.m.reg_name(r),
                            w.bits()
                        ),
                    ));
                }
            }
        }

        // L004: a slot both stored and reloaded inside loops — the
        // store/reload ping-pong the IP objective is meant to price out.
        let li = LoopInfo::new(self.alloc, &self.cfg);
        let nslots = self.alloc.slots().len();
        let mut store_at: Vec<Option<(u32, usize)>> = vec![None; nslots];
        let mut load_in_loop = vec![false; nslots];
        for (b, ii, inst) in self.alloc.insts() {
            if li.depth(b) == 0 {
                continue;
            }
            match inst {
                Inst::SpillStore { slot, .. } if store_at[slot.index()].is_none() => {
                    store_at[slot.index()] = Some((b.0, ii));
                }
                Inst::SpillLoad { slot, .. } => load_in_loop[slot.index()] = true,
                _ => {}
            }
        }
        for (si, at) in store_at.iter().enumerate() {
            if let Some((b, ii)) = at {
                if load_in_loop[si] {
                    out.push(
                        Diagnostic::warning(
                            diag::L_SPILL_PING_PONG,
                            *b,
                            *ii,
                            format!("slot s{si} is stored and reloaded inside a loop"),
                        )
                        .with_note("the value ping-pongs between a register and the stack"),
                    );
                }
            }
        }

        self.dead_spill_stores(&mut out);
        out
    }

    /// L001: backward slot-liveness; a spill store whose slot is dead is
    /// wasted work. Home-coalesced slots are exempt (their cell is the
    /// global's memory, not scratch space).
    fn dead_spill_stores(&self, out: &mut Vec<Diagnostic>) {
        let n = self.alloc.num_blocks();
        let mut live_in: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        loop {
            let mut changed = false;
            for bi in (0..n as u32).rev() {
                let b = BlockId(bi);
                let mut live: BTreeSet<u32> = BTreeSet::new();
                for &sc in self.cfg.succs(b) {
                    live.extend(live_in[sc.index()].iter());
                }
                for inst in self.alloc.block(b).insts.iter().rev() {
                    if let Inst::SpillStore { slot, .. } = inst {
                        live.remove(&slot.0);
                    } else {
                        live.extend(slot_reads(inst));
                    }
                }
                if live != live_in[b.index()] {
                    live_in[b.index()] = live;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for b in self.alloc.block_ids() {
            let mut live: BTreeSet<u32> = BTreeSet::new();
            for &sc in self.cfg.succs(b) {
                live.extend(live_in[sc.index()].iter());
            }
            let insts = &self.alloc.block(b).insts;
            let mut dead = Vec::new();
            for (ii, inst) in insts.iter().enumerate().rev() {
                if let Inst::SpillStore { slot, .. } = inst {
                    if !live.contains(&slot.0) && self.alloc.slot(*slot).home.is_none() {
                        dead.push((ii, slot.0));
                    }
                    live.remove(&slot.0);
                } else {
                    live.extend(slot_reads(inst));
                }
            }
            for (ii, s) in dead.into_iter().rev() {
                out.push(
                    Diagnostic::warning(
                        diag::L_DEAD_SPILL_STORE,
                        b.0,
                        ii,
                        format!("spill store to slot s{s} is never reloaded"),
                    )
                    .with_note("the stored value is dead on every path"),
                );
            }
        }
    }
}

/// Allocator-introduced instructions that match no original instruction.
fn is_ghost(a: &Inst) -> bool {
    matches!(
        a,
        Inst::Copy { .. } | Inst::LoadImm { .. } | Inst::SpillLoad { .. } | Inst::SpillStore { .. }
    )
}

fn slot_of(o: &Operand) -> Option<u32> {
    match o {
        Operand::Slot(s) => Some(s.0),
        _ => None,
    }
}

/// Slots this instruction reads (a non-combined `Dst::Slot` counts as a
/// read-modify-write, conservatively keeping its store alive).
fn slot_reads(inst: &Inst) -> Vec<u32> {
    let mut out = Vec::new();
    match inst {
        Inst::SpillLoad { slot, .. } => out.push(slot.0),
        Inst::Bin { dst, lhs, rhs, .. } => {
            out.extend(slot_of(lhs));
            out.extend(slot_of(rhs));
            if let Dst::Slot(s) = dst {
                out.push(s.0);
            }
        }
        Inst::Un { dst, src, .. } => {
            out.extend(slot_of(src));
            if let Dst::Slot(s) = dst {
                out.push(s.0);
            }
        }
        Inst::Branch { lhs, rhs, .. } => {
            out.extend(slot_of(lhs));
            out.extend(slot_of(rhs));
        }
        Inst::Call { args, .. } => out.extend(args.iter().filter_map(slot_of)),
        Inst::Store { src, .. } => out.extend(slot_of(src)),
        Inst::Ret { val: Some(v) } => out.extend(slot_of(v)),
        _ => {}
    }
    out
}

/// Shape equality of one original and one allocated instruction: same
/// variant, operation, width and control targets. Operand *values* are
/// the dataflow's job; only their compatibility is checked there.
fn same_shape(o: &Inst, a: &Inst) -> bool {
    match (o, a) {
        (
            Inst::Load {
                addr: oa,
                width: ow,
                ..
            },
            Inst::Load {
                addr: aa,
                width: aw,
                ..
            },
        )
        | (
            Inst::Store {
                addr: oa,
                width: ow,
                ..
            },
            Inst::Store {
                addr: aa,
                width: aw,
                ..
            },
        ) => ow == aw && addr_shape(oa, aa),
        (
            Inst::Bin {
                op: oo, width: ow, ..
            },
            Inst::Bin {
                op: ao, width: aw, ..
            },
        ) => oo == ao && ow == aw,
        (
            Inst::Un {
                op: oo, width: ow, ..
            },
            Inst::Un {
                op: ao, width: aw, ..
            },
        ) => oo == ao && ow == aw,
        (
            Inst::Call {
                callee: oc,
                ret: orr,
                args: oargs,
                width: ow,
            },
            Inst::Call {
                callee: ac,
                ret: arr,
                args: aargs,
                width: aw,
            },
        ) => oc == ac && ow == aw && oargs.len() == aargs.len() && orr.is_some() == arr.is_some(),
        (Inst::Jump { target: ot }, Inst::Jump { target: at }) => ot == at,
        (
            Inst::Branch {
                cond: oc,
                width: ow,
                then_blk: otb,
                else_blk: oeb,
                ..
            },
            Inst::Branch {
                cond: ac,
                width: aw,
                then_blk: atb,
                else_blk: aeb,
                ..
            },
        ) => oc == ac && ow == aw && otb == atb && oeb == aeb,
        (Inst::Ret { val: ov }, Inst::Ret { val: av }) => ov.is_some() == av.is_some(),
        _ => false,
    }
}

fn addr_shape(oa: &Address, aa: &Address) -> bool {
    match (oa, aa) {
        (Address::Global(g1), Address::Global(g2)) => g1 == g2,
        (
            Address::Indirect {
                base: b1,
                index: i1,
                disp: d1,
            },
            Address::Indirect {
                base: b2,
                index: i2,
                disp: d2,
            },
        ) => {
            d1 == d2
                && b1.is_some() == b2.is_some()
                && match (i1, i2) {
                    (Some((_, s1)), Some((_, s2))) => s1 == s2,
                    (None, None) => true,
                    _ => false,
                }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::{BinOp, Cond, FunctionBuilder};
    use regalloc_x86::regs::{EAX, EBX, ECX, EDX, ESI};
    use regalloc_x86::X86Machine;

    fn real(r: PhysReg) -> Operand {
        Operand::Loc(Loc::Real(r))
    }

    /// orig: a = load p; b = load q; c = a + b; ret c
    fn two_param_orig() -> Function {
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let q = fb.new_param("q", Width::B32);
        let a = fb.new_sym(Width::B32);
        let bb = fb.new_sym(Width::B32);
        let c = fb.new_sym(Width::B32);
        fb.load_global(a, p);
        fb.load_global(bb, q);
        fb.bin(BinOp::Add, c, Operand::sym(a), Operand::sym(bb));
        fb.ret(Some(c));
        fb.finish()
    }

    /// A correct hand allocation of [`two_param_orig`]:
    /// eax = load p; ebx = load q; eax += ebx; ret eax
    fn two_param_alloc() -> Function {
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let q = fb.new_param("q", Width::B32);
        fb.push(Inst::Load {
            dst: Loc::Real(EAX),
            addr: Address::Global(p),
            width: Width::B32,
        });
        fb.push(Inst::Load {
            dst: Loc::Real(EBX),
            addr: Address::Global(q),
            width: Width::B32,
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(EAX)),
            lhs: real(EAX),
            rhs: real(EBX),
            width: Width::B32,
        });
        fb.push(Inst::Ret {
            val: Some(real(EAX)),
        });
        fb.finish()
    }

    #[test]
    fn accepts_correct_allocation() {
        let m = X86Machine::pentium();
        let errs = validate(&m, &two_param_orig(), &two_param_alloc());
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rejects_wrong_register_read() {
        let m = X86Machine::pentium();
        let orig = two_param_orig();
        let mut alloc = two_param_alloc();
        // Read the wrong register in the add: ecx never held v1.
        let e = alloc.entry();
        if let Inst::Bin { rhs, .. } = &mut alloc.block_mut(e).insts[2] {
            *rhs = real(ECX);
        }
        let errs = validate(&m, &orig, &alloc);
        assert!(
            errs.iter().any(|d| d.code == diag::T_WRONG_VALUE),
            "{errs:?}"
        );
        assert_eq!((errs[0].block, errs[0].inst), (0, 2));
    }

    #[test]
    fn rejects_swapped_noncommutative_operands() {
        let m = X86Machine::pentium();
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let q = fb.new_param("q", Width::B32);
        let a = fb.new_sym(Width::B32);
        let bb = fb.new_sym(Width::B32);
        let c = fb.new_sym(Width::B32);
        fb.load_global(a, p);
        fb.load_global(bb, q);
        fb.bin(BinOp::Sub, c, Operand::sym(a), Operand::sym(bb));
        fb.ret(Some(c));
        let orig = fb.finish();

        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let q = fb.new_param("q", Width::B32);
        fb.push(Inst::Load {
            dst: Loc::Real(EAX),
            addr: Address::Global(p),
            width: Width::B32,
        });
        fb.push(Inst::Load {
            dst: Loc::Real(EBX),
            addr: Address::Global(q),
            width: Width::B32,
        });
        fb.push(Inst::Bin {
            op: BinOp::Sub,
            dst: Dst::Loc(Loc::Real(EBX)),
            lhs: real(EBX), // computes q - p, not p - q
            rhs: real(EAX),
            width: Width::B32,
        });
        fb.push(Inst::Ret {
            val: Some(real(EBX)),
        });
        let alloc = fb.finish();

        let m2 = &m;
        let errs = validate(m2, &orig, &alloc);
        assert!(
            errs.iter().any(|d| d.code == diag::T_WRONG_VALUE),
            "{errs:?}"
        );
    }

    #[test]
    fn accepts_commutative_operand_swap() {
        let m = X86Machine::pentium();
        let orig = two_param_orig();
        let mut alloc = two_param_alloc();
        let e = alloc.entry();
        // add is commutative: eax = ebx + eax computes the same sum.
        if let Inst::Bin { lhs, rhs, dst, .. } = &mut alloc.block_mut(e).insts[2] {
            *dst = Dst::Loc(Loc::Real(EBX));
            *lhs = real(EBX);
            *rhs = real(EAX);
        }
        if let Inst::Ret { val } = &mut alloc.block_mut(e).insts[3] {
            *val = Some(real(EBX));
        }
        let errs = validate(&m, &orig, &alloc);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn accepts_deleted_copy() {
        let m = X86Machine::pentium();
        // orig: a = load p; b = a (copy); ret b — allocator deletes the copy.
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let a = fb.new_sym(Width::B32);
        let bb = fb.new_sym(Width::B32);
        fb.load_global(a, p);
        fb.copy(bb, a);
        fb.ret(Some(bb));
        let orig = fb.finish();

        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        fb.push(Inst::Load {
            dst: Loc::Real(EAX),
            addr: Address::Global(p),
            width: Width::B32,
        });
        fb.push(Inst::Ret {
            val: Some(real(EAX)),
        });
        let alloc = fb.finish();
        let errs = validate(&m, &orig, &alloc);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn accepts_rematerialised_constant() {
        let m = X86Machine::pentium();
        // orig: k = 7; a = load p; c = a + k; ret c
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let k = fb.new_sym(Width::B32);
        let a = fb.new_sym(Width::B32);
        let c = fb.new_sym(Width::B32);
        fb.load_imm(k, 7);
        fb.load_global(a, p);
        fb.bin(BinOp::Add, c, Operand::sym(a), Operand::sym(k));
        fb.ret(Some(c));
        let orig = fb.finish();

        // alloc rematerialises 7 late, into a different register.
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        fb.push(Inst::Load {
            dst: Loc::Real(EAX),
            addr: Address::Global(p),
            width: Width::B32,
        });
        fb.push(Inst::LoadImm {
            dst: Loc::Real(EDX),
            imm: 7,
            width: Width::B32,
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(EAX)),
            lhs: real(EAX),
            rhs: real(EDX),
            width: Width::B32,
        });
        fb.push(Inst::Ret {
            val: Some(real(EAX)),
        });
        let alloc = fb.finish();
        let errs = validate(&m, &orig, &alloc);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn rejects_value_lost_across_call() {
        let m = X86Machine::pentium();
        // orig: a = load p; r = call 5(); c = a + r; ret c
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let a = fb.new_sym(Width::B32);
        let r = fb.new_sym(Width::B32);
        let c = fb.new_sym(Width::B32);
        fb.load_global(a, p);
        fb.call(5, Some(r), vec![]);
        fb.bin(BinOp::Add, c, Operand::sym(a), Operand::sym(r));
        fb.ret(Some(c));
        let orig = fb.finish();

        // alloc keeps `a` in caller-saved ECX across the call: destroyed.
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        fb.push(Inst::Load {
            dst: Loc::Real(ECX),
            addr: Address::Global(p),
            width: Width::B32,
        });
        fb.push(Inst::Call {
            callee: 5,
            ret: Some(Loc::Real(EAX)),
            args: vec![],
            width: Width::B32,
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(ECX)),
            lhs: real(ECX),
            rhs: real(EAX),
            width: Width::B32,
        });
        fb.push(Inst::Ret {
            val: Some(real(ECX)),
        });
        let alloc = fb.finish();
        let errs = validate(&m, &orig, &alloc);
        assert!(
            errs.iter().any(|d| d.code == diag::T_WRONG_VALUE),
            "{errs:?}"
        );

        // Keeping it in callee-saved ESI instead is fine.
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        fb.push(Inst::Load {
            dst: Loc::Real(ESI),
            addr: Address::Global(p),
            width: Width::B32,
        });
        fb.push(Inst::Call {
            callee: 5,
            ret: Some(Loc::Real(EAX)),
            args: vec![],
            width: Width::B32,
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(ESI)),
            lhs: real(ESI),
            rhs: real(EAX),
            width: Width::B32,
        });
        fb.push(Inst::Ret {
            val: Some(real(ESI)),
        });
        let alloc = fb.finish();
        assert!(validate(&m, &orig, &alloc).is_empty());
    }

    #[test]
    fn accepts_spill_and_reload_across_branches() {
        let m = X86Machine::pentium();
        // orig: a = load p; if a < 0 { b = a+1 } else { b = a+2 }; ret b
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let a = fb.new_sym(Width::B32);
        let b1 = fb.new_sym(Width::B32);
        let then_b = fb.block();
        let else_b = fb.block();
        let exit = fb.block();
        fb.load_global(a, p);
        fb.branch(
            Cond::Lt,
            Operand::sym(a),
            Operand::Imm(0),
            Width::B32,
            then_b,
            else_b,
        );
        fb.switch_to(then_b);
        fb.bin(BinOp::Add, b1, Operand::sym(a), Operand::Imm(1));
        fb.jump(exit);
        fb.switch_to(else_b);
        fb.bin(BinOp::Add, b1, Operand::sym(a), Operand::Imm(2));
        fb.jump(exit);
        fb.switch_to(exit);
        fb.ret(Some(b1));
        let orig = fb.finish();

        // alloc: spill a to a slot, reload it in each arm.
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let then_b = fb.block();
        let else_b = fb.block();
        let exit = fb.block();
        fb.push(Inst::Load {
            dst: Loc::Real(EAX),
            addr: Address::Global(p),
            width: Width::B32,
        });
        fb.push(Inst::Branch {
            cond: Cond::Lt,
            lhs: real(EAX),
            rhs: Operand::Imm(0),
            width: Width::B32,
            then_blk: then_b,
            else_blk: else_b,
        });
        fb.switch_to(then_b);
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(EAX)),
            lhs: real(EAX),
            rhs: Operand::Imm(1),
            width: Width::B32,
        });
        fb.push(Inst::Jump { target: exit });
        fb.switch_to(else_b);
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(EAX)),
            lhs: real(EAX),
            rhs: Operand::Imm(2),
            width: Width::B32,
        });
        fb.push(Inst::Jump { target: exit });
        fb.switch_to(exit);
        fb.push(Inst::Ret {
            val: Some(real(EAX)),
        });
        let mut alloc = fb.finish();
        let sl = alloc.add_slot(Width::B32, None);
        let e = alloc.entry();
        alloc.block_mut(e).insts.insert(
            1,
            Inst::SpillStore {
                slot: sl,
                src: Loc::Real(EAX),
                width: Width::B32,
            },
        );
        // Reload into EBX in the then-arm and use it there instead.
        alloc.block_mut(then_b).insts.insert(
            0,
            Inst::SpillLoad {
                dst: Loc::Real(EBX),
                slot: sl,
                width: Width::B32,
            },
        );
        if let Inst::Bin { dst, lhs, .. } = &mut alloc.block_mut(then_b).insts[1] {
            *dst = Dst::Loc(Loc::Real(EAX));
            *lhs = real(EBX);
        }
        // eax = ebx + 1 is three-address; rewrite as copy + add.
        alloc.block_mut(then_b).insts[1] = Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(EBX)),
            lhs: real(EBX),
            rhs: Operand::Imm(1),
            width: Width::B32,
        };
        alloc.block_mut(then_b).insts.insert(
            2,
            Inst::Copy {
                dst: Loc::Real(EAX),
                src: Loc::Real(EBX),
                width: Width::B32,
            },
        );
        let errs = validate(&m, &orig, &alloc);
        assert!(errs.is_empty(), "{errs:?}");
        // The then-arm reload happens while EAX still holds the value:
        // the quality layer flags it as redundant.
        let lints = lint_allocation(&m, &orig, &alloc);
        assert!(
            lints.iter().any(|d| d.code == diag::L_REDUNDANT_RELOAD),
            "{lints:?}"
        );
    }

    #[test]
    fn lints_dead_spill_store_and_self_move() {
        let m = X86Machine::pentium();
        let orig = two_param_orig();
        let mut alloc = two_param_alloc();
        let sl = alloc.add_slot(Width::B32, None);
        let e = alloc.entry();
        // Store to a slot nothing ever reloads, plus a self-move.
        alloc.block_mut(e).insts.insert(
            1,
            Inst::SpillStore {
                slot: sl,
                src: Loc::Real(EAX),
                width: Width::B32,
            },
        );
        alloc.block_mut(e).insts.insert(
            2,
            Inst::Copy {
                dst: Loc::Real(EAX),
                src: Loc::Real(EAX),
                width: Width::B32,
            },
        );
        let a = analyze(&m, &orig, &alloc);
        assert!(a.errors.is_empty(), "{:?}", a.errors);
        assert!(a.lints.iter().any(|d| d.code == diag::L_DEAD_SPILL_STORE));
        assert!(a.lints.iter().any(|d| d.code == diag::L_SELF_MOVE));
    }

    #[test]
    fn rejects_extra_instruction() {
        let m = X86Machine::pentium();
        let orig = two_param_orig();
        let mut alloc = two_param_alloc();
        let e = alloc.entry();
        // An extra un-matched arithmetic instruction breaks alignment.
        alloc.block_mut(e).insts.insert(
            2,
            Inst::Un {
                op: regalloc_ir::UnOp::Neg,
                dst: Dst::Loc(Loc::Real(EBX)),
                src: real(EBX),
                width: Width::B32,
            },
        );
        let errs = validate(&m, &orig, &alloc);
        assert!(
            errs.iter().any(|d| d.code == diag::T_SHAPE_MISMATCH),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_clobbered_home_cell() {
        let m = X86Machine::pentium();
        // orig: g is a true global read late: a = load p; store q, a; b = load q; ret b
        // Simpler: two loads of the same non-predef global with a spill
        // overwriting its home... home coalescing requires predef; instead
        // directly test: load of global whose cell a SpillStore with
        // home=Some(g) clobbered.
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let q = fb.new_param("q", Width::B32);
        let a = fb.new_sym(Width::B32);
        let bb = fb.new_sym(Width::B32);
        let c = fb.new_sym(Width::B32);
        fb.load_global(a, p);
        fb.load_global(bb, q);
        fb.bin(BinOp::Add, c, Operand::sym(a), Operand::sym(bb));
        fb.ret(Some(c));
        let orig = fb.finish();

        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let q = fb.new_param("q", Width::B32);
        fb.push(Inst::Load {
            dst: Loc::Real(EAX),
            addr: Address::Global(p),
            width: Width::B32,
        });
        fb.push(Inst::Load {
            dst: Loc::Real(EBX),
            addr: Address::Global(q),
            width: Width::B32,
        });
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(EAX)),
            lhs: real(EAX),
            rhs: real(EBX),
            width: Width::B32,
        });
        fb.push(Inst::Ret {
            val: Some(real(EAX)),
        });
        let mut alloc = fb.finish();
        // A slot home-coalesced onto q, stored *before* q's load: the
        // stored value (p's) is not q's, so the later load is wrong.
        let sl = alloc.add_slot(Width::B32, Some(q));
        let e = alloc.entry();
        alloc.block_mut(e).insts.insert(
            1,
            Inst::SpillStore {
                slot: sl,
                src: Loc::Real(EAX),
                width: Width::B32,
            },
        );
        let errs = validate(&m, &orig, &alloc);
        assert!(
            errs.iter().any(|d| d.code == diag::T_CLOBBERED_GLOBAL),
            "{errs:?}"
        );
    }

    #[test]
    fn accepts_kept_predef_load_and_deleted_predef_load() {
        let m = X86Machine::pentium();
        // kept: two_param tests above already cover matching loads.
        // deleted: orig loads p once; alloc reads p's home cell directly
        // via a home-coalesced SpillLoad.
        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        let a = fb.new_sym(Width::B32);
        let c = fb.new_sym(Width::B32);
        fb.load_global(a, p);
        fb.bin(BinOp::Add, c, Operand::sym(a), Operand::Imm(3));
        fb.ret(Some(c));
        let orig = fb.finish();

        let mut fb = FunctionBuilder::new("f");
        let p = fb.new_param("p", Width::B32);
        fb.push(Inst::Bin {
            op: BinOp::Add,
            dst: Dst::Loc(Loc::Real(EAX)),
            lhs: real(EAX),
            rhs: Operand::Imm(3),
            width: Width::B32,
        });
        fb.push(Inst::Ret {
            val: Some(real(EAX)),
        });
        let mut alloc = fb.finish();
        let sl = alloc.add_slot(Width::B32, Some(p));
        let e = alloc.entry();
        alloc.block_mut(e).insts.insert(
            0,
            Inst::SpillLoad {
                dst: Loc::Real(EAX),
                slot: sl,
                width: Width::B32,
            },
        );
        let errs = validate(&m, &orig, &alloc);
        assert!(errs.is_empty(), "{errs:?}");
    }
}
