//! The shared diagnostics engine: one structured [`Diagnostic`] type with
//! stable codes, deterministic ordering and text/JSON/SARIF emitters.
//!
//! Every static checker in the workspace reports through this type:
//!
//! * `V…` — machine-independent structural errors
//!   ([`regalloc_ir::VerifyError`]),
//! * `M0…` — machine-invariant errors ([`regalloc_machine::MachineError`]),
//! * `M1…` — target-model self-check findings
//!   ([`regalloc_machine::ModelDiagnostic`]),
//! * `T…` — translation-validation errors (this crate's
//!   [`validate`](crate::validate::validate)),
//! * `L…` — allocation-quality lints (this crate's
//!   [`lint_allocation`](crate::validate::lint_allocation)),
//! * `A…` — solver-certificate audit findings (`regalloc-audit`).
//!
//! Codes are append-only: a code's meaning never changes once released,
//! so `--deny <code>` pins stay valid across versions.

use std::fmt;

use regalloc_ir::VerifyError;
use regalloc_machine::{MachineError, MachineErrorKind, ModelCheckKind, ModelDiagnostic};

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// The allocation is wrong (or unencodable) and must not be emitted.
    Error,
    /// The allocation is correct but leaves quality on the table.
    Warning,
}

impl Severity {
    /// Stable lowercase name (`error` / `warning`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }

    /// The SARIF `level` for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// A stable diagnostic code: a short id (`T002`) plus a human slug
/// (`wrong-value`). `--deny` accepts either spelling.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Code {
    /// Short stable identifier, e.g. `L001`.
    pub id: &'static str,
    /// Kebab-case slug, e.g. `dead-spill-store`.
    pub slug: &'static str,
}

impl Code {
    /// True if `name` names this code (by id or slug, case-sensitive).
    pub fn matches(&self, name: &str) -> bool {
        self.id == name || self.slug == name
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id, self.slug)
    }
}

macro_rules! codes {
    ($($(#[$doc:meta])* $name:ident = $id:literal, $slug:literal;)*) => {
        $($(#[$doc])* pub const $name: Code = Code { id: $id, slug: $slug };)*

        /// Every code the engine can emit, in id order.
        pub const ALL_CODES: &[Code] = &[$($name),*];
    };
}

codes! {
    // V-codes mirror `regalloc_ir::VerifyError`, variant for variant.
    /// A block has no instructions.
    V_EMPTY_BLOCK = "V001", "empty-block";
    /// A block's last instruction is not a terminator.
    V_MISSING_TERMINATOR = "V002", "missing-terminator";
    /// A terminator appears before the end of a block.
    V_EARLY_TERMINATOR = "V003", "early-terminator";
    /// A branch or jump targets a block outside the function.
    V_BAD_TARGET = "V004", "bad-target";
    /// An instruction references a symbolic register out of range.
    V_BAD_SYM = "V005", "bad-sym";
    /// A symbolic register is used at the wrong width.
    V_WIDTH_MISMATCH = "V006", "width-mismatch";
    /// A physical register appears in a symbolic-form function.
    V_UNEXPECTED_REAL = "V007", "unexpected-real";
    /// A spill slot appears in a symbolic-form function.
    V_UNEXPECTED_SLOT = "V008", "unexpected-slot";
    /// A symbolic register survives allocation.
    V_UNALLOCATED_SYM = "V009", "unallocated-sym";
    /// A spill-slot reference is out of range.
    V_BAD_SLOT = "V010", "bad-slot";

    // M0xx codes mirror `regalloc_machine::MachineErrorKind`.
    /// A register holds a value outside its width class.
    M_WIDTH_CLASS = "M001", "width-class";
    /// A pinned operand sits in a register the position does not admit.
    M_PINNING = "M002", "pinning";
    /// A memory operand appears in a position the machine cannot encode.
    M_MEMORY_FORM = "M003", "memory-form";
    /// A two-address instruction's destination differs from its source.
    M_TWO_ADDRESS = "M004", "two-address";
    /// More than one memory operand in a single instruction.
    M_MEM_OPERAND_COUNT = "M005", "mem-operand-count";

    // M1xx codes mirror `regalloc_machine::ModelCheckKind`: findings of
    // the target-model self-check, anchored at b0:0 (they describe the
    // machine description itself, not any program point).
    /// The alias relation is not reflexive/symmetric over allocatable
    /// registers.
    M_ALIAS_ASYMMETRY = "M101", "alias-asymmetry";
    /// Overlap groups do not cover the allocatable set, or group sharing
    /// disagrees with the alias relation.
    M_OVERLAP_PARTITION = "M102", "overlap-partition";
    /// A width class names a register outside every overlap group.
    M_WIDTH_CLASS_ESCAPE = "M103", "width-class-escape";
    /// A size-penalty entry names a register its constraint never admits.
    M_PENALTY_NOT_ADMITTED = "M104", "penalty-not-admitted";

    // T-codes: translation validation (all-paths dataflow proof).
    /// Allocated code cannot be aligned with the original instruction
    /// stream (missing, extra or reshaped instructions).
    T_SHAPE_MISMATCH = "T001", "shape-mismatch";
    /// A location read by an instruction does not hold the required
    /// original value on every path.
    T_WRONG_VALUE = "T002", "wrong-value";
    /// An original constant operand is not proven to be reproduced.
    T_CONSTANT_MISMATCH = "T003", "constant-mismatch";
    /// A load observes a global whose home location was clobbered.
    T_CLOBBERED_GLOBAL = "T004", "clobbered-global";

    // L-codes: allocation-quality lints.
    /// A spill store whose slot is never reloaded on any path.
    L_DEAD_SPILL_STORE = "L001", "dead-spill-store";
    /// A reload of a value that is still live in a register.
    L_REDUNDANT_RELOAD = "L002", "redundant-reload";
    /// A copy whose source and destination are the same register.
    L_SELF_MOVE = "L003", "self-move";
    /// A slot both stored and reloaded inside the same loop.
    L_SPILL_PING_PONG = "L004", "spill-ping-pong";
    /// A definition register outside the machine's class for its width.
    L_UNALLOCATABLE_WIDTH = "L005", "unallocatable-width";

    // A-codes: certificate-audit findings (`regalloc-audit`). The anchor
    // coordinate is reused as `b0:<leaf index>` — certificates have no
    // program point, only branch-and-bound leaves.
    /// A dual multiplier violates its row's sign condition.
    A_DUAL_SIGN = "A001", "dual-sign-violation";
    /// A prune claim's exact dual bound does not dominate the incumbent.
    A_WEAK_BOUND = "A002", "weak-bound";
    /// A Farkas claim's exact dual objective is not strictly positive.
    A_FARKAS_NOT_POSITIVE = "A003", "farkas-not-positive";
    /// The incumbent assignment violates a model constraint or fixing.
    A_INCUMBENT_INFEASIBLE = "A004", "incumbent-infeasible";
    /// The incumbent's exact objective differs from the claimed value.
    A_OBJECTIVE_MISMATCH = "A005", "objective-mismatch";
    /// The leaves do not cover the branch tree (a subtree has no claim).
    A_COVERAGE_GAP = "A006", "coverage-gap";
    /// A recorded propagation step is not implied by the current bounds.
    A_DEDUCTION_UNJUSTIFIED = "A007", "deduction-unjustified";
    /// An optimality claim arrived with no certificate attached.
    A_MISSING_CERTIFICATE = "A008", "missing-certificate";
    /// The certificate is structurally broken (bad index, wrong length,
    /// or rational arithmetic overflowed i128 while checking it).
    A_MALFORMED_CERTIFICATE = "A009", "malformed-certificate";
}

/// Look a code up by id or slug.
pub fn code_by_name(name: &str) -> Option<Code> {
    ALL_CODES.iter().copied().find(|c| c.matches(name))
}

/// One structured finding, anchored to a `b<block>:<inst>` coordinate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// Block index of the anchor instruction.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: usize,
    /// What went wrong (or could be better).
    pub message: String,
    /// Extra context (may be empty).
    pub note: String,
}

impl Diagnostic {
    /// An error diagnostic with an empty note.
    pub fn error(code: Code, block: u32, inst: usize, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            block,
            inst,
            message: message.into(),
            note: String::new(),
        }
    }

    /// A warning diagnostic with an empty note.
    pub fn warning(code: Code, block: u32, inst: usize, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            block,
            inst,
            message: message.into(),
            note: String::new(),
        }
    }

    /// Attach a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.note = note.into();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b{}:{}: {} [{}] {}",
            self.block,
            self.inst,
            self.severity.name(),
            self.code.id,
            self.message
        )?;
        if !self.note.is_empty() {
            write!(f, " ({})", self.note)?;
        }
        Ok(())
    }
}

/// Sort diagnostics into the engine's canonical deterministic order:
/// program point, then severity (errors first), then code, then message.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.block, a.inst, a.severity, a.code, &a.message, &a.note)
            .cmp(&(b.block, b.inst, b.severity, b.code, &b.message, &b.note))
    });
}

impl From<&VerifyError> for Diagnostic {
    fn from(e: &VerifyError) -> Diagnostic {
        let (code, block, inst) = match e {
            VerifyError::EmptyBlock(b) => (V_EMPTY_BLOCK, b.0, 0),
            VerifyError::MissingTerminator(b) => (V_MISSING_TERMINATOR, b.0, 0),
            VerifyError::EarlyTerminator(b, i) => (V_EARLY_TERMINATOR, b.0, *i),
            VerifyError::BadTarget(b, _) => (V_BAD_TARGET, b.0, 0),
            VerifyError::BadSym(b, i) => (V_BAD_SYM, b.0, *i),
            VerifyError::WidthMismatch(b, i, _) => (V_WIDTH_MISMATCH, b.0, *i),
            VerifyError::UnexpectedReal(b, i) => (V_UNEXPECTED_REAL, b.0, *i),
            VerifyError::UnexpectedSlot(b, i) => (V_UNEXPECTED_SLOT, b.0, *i),
            VerifyError::UnallocatedSym(b, i) => (V_UNALLOCATED_SYM, b.0, *i),
            VerifyError::BadSlot(b, i) => (V_BAD_SLOT, b.0, *i),
        };
        Diagnostic::error(code, block, inst, e.to_string())
    }
}

impl From<VerifyError> for Diagnostic {
    fn from(e: VerifyError) -> Diagnostic {
        Diagnostic::from(&e)
    }
}

impl From<&MachineError> for Diagnostic {
    fn from(e: &MachineError) -> Diagnostic {
        let code = match e.kind {
            MachineErrorKind::WidthClass => M_WIDTH_CLASS,
            MachineErrorKind::Pinning => M_PINNING,
            MachineErrorKind::MemoryForm => M_MEMORY_FORM,
            MachineErrorKind::TwoAddress => M_TWO_ADDRESS,
            MachineErrorKind::MemOperandCount => M_MEM_OPERAND_COUNT,
        };
        Diagnostic::error(code, e.block, e.inst, e.message.clone())
    }
}

impl From<MachineError> for Diagnostic {
    fn from(e: MachineError) -> Diagnostic {
        Diagnostic::from(&e)
    }
}

impl From<&ModelDiagnostic> for Diagnostic {
    fn from(d: &ModelDiagnostic) -> Diagnostic {
        let code = match d.kind {
            ModelCheckKind::AliasAsymmetry => M_ALIAS_ASYMMETRY,
            ModelCheckKind::OverlapPartition => M_OVERLAP_PARTITION,
            ModelCheckKind::WidthClassEscape => M_WIDTH_CLASS_ESCAPE,
            ModelCheckKind::PenaltyNotAdmitted => M_PENALTY_NOT_ADMITTED,
        };
        Diagnostic::error(code, 0, 0, d.message.clone())
    }
}

impl From<ModelDiagnostic> for Diagnostic {
    fn from(d: ModelDiagnostic) -> Diagnostic {
        Diagnostic::from(&d)
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A set of diagnostics attributed to one function, ready to render.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// `(function name, its sorted diagnostics)` pairs, in suite order.
    pub functions: Vec<(String, Vec<Diagnostic>)>,
}

impl Report {
    /// Append one function's findings (sorted canonically on insert).
    pub fn push(&mut self, name: impl Into<String>, mut diags: Vec<Diagnostic>) {
        sort_diagnostics(&mut diags);
        self.functions.push((name.into(), diags));
    }

    /// Total findings across all functions.
    pub fn len(&self) -> usize {
        self.functions.iter().map(|(_, d)| d.len()).sum()
    }

    /// True if no function has any finding.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over every finding with its function name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Diagnostic)> {
        self.functions
            .iter()
            .flat_map(|(n, ds)| ds.iter().map(move |d| (n.as_str(), d)))
    }

    /// Count findings carrying `code`.
    pub fn count_of(&self, code: Code) -> usize {
        self.iter().filter(|(_, d)| d.code == code).count()
    }

    /// Render as human-readable text, one line per finding.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, diags) in &self.functions {
            for d in diags {
                let _ = writeln!(out, "{name}: {d}");
            }
        }
        out
    }

    /// Render as a JSON array of finding objects.
    pub fn to_json(&self) -> String {
        let mut items = Vec::new();
        for (name, d) in self.iter() {
            items.push(format!(
                "  {{\"function\": \"{}\", \"code\": \"{}\", \"slug\": \"{}\", \
                 \"severity\": \"{}\", \"block\": {}, \"inst\": {}, \
                 \"message\": \"{}\", \"note\": \"{}\"}}",
                json_escape(name),
                d.code.id,
                d.code.slug,
                d.severity.name(),
                d.block,
                d.inst,
                json_escape(&d.message),
                json_escape(&d.note)
            ));
        }
        format!("[\n{}\n]\n", items.join(",\n"))
    }

    /// Render as a minimal SARIF 2.1.0 log (one run, one result per
    /// finding, rules populated from the codes actually emitted).
    pub fn to_sarif(&self) -> String {
        use std::fmt::Write as _;
        let mut rules: Vec<Code> = Vec::new();
        for (_, d) in self.iter() {
            if !rules.contains(&d.code) {
                rules.push(d.code);
            }
        }
        rules.sort();
        let rules_json: Vec<String> = rules
            .iter()
            .map(|c| {
                format!(
                    "          {{\"id\": \"{}\", \"name\": \"{}\"}}",
                    c.id, c.slug
                )
            })
            .collect();
        let mut results = Vec::new();
        for (name, d) in self.iter() {
            let mut r = String::new();
            let _ = write!(
                r,
                "      {{\"ruleId\": \"{}\", \"level\": \"{}\", \
                 \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\
                 \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"functions/{}.ir\"}}, \
                 \"region\": {{\"startLine\": {}}}}}, \
                 \"logicalLocations\": [{{\"name\": \"{}\", \
                 \"fullyQualifiedName\": \"{}:b{}:{}\"}}]}}]}}",
                d.code.id,
                d.severity.sarif_level(),
                json_escape(&if d.note.is_empty() {
                    d.message.clone()
                } else {
                    format!("{} ({})", d.message, d.note)
                }),
                json_escape(name),
                d.block as usize + 1,
                json_escape(name),
                json_escape(name),
                d.block,
                d.inst
            );
            results.push(r);
        }
        format!(
            "{{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
             \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [{{\n    \
             \"tool\": {{\n      \"driver\": {{\n        \"name\": \"regalloc-lint\",\n        \
             \"rules\": [\n{}\n        ]\n      }}\n    }},\n    \"results\": [\n{}\n    ]\n  }}]\n}}\n",
            rules_json.join(",\n"),
            results.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::BlockId;

    #[test]
    fn codes_are_unique_and_resolvable() {
        for (i, a) in ALL_CODES.iter().enumerate() {
            for b in &ALL_CODES[i + 1..] {
                assert_ne!(a.id, b.id);
                assert_ne!(a.slug, b.slug);
            }
            assert_eq!(code_by_name(a.id), Some(*a));
            assert_eq!(code_by_name(a.slug), Some(*a));
        }
        assert_eq!(code_by_name("nope"), None);
    }

    #[test]
    fn verify_error_maps_to_stable_code() {
        let d = Diagnostic::from(VerifyError::UnallocatedSym(BlockId(3), 7));
        assert_eq!(d.code, V_UNALLOCATED_SYM);
        assert_eq!((d.block, d.inst), (3, 7));
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn machine_error_maps_to_stable_code() {
        let e = MachineError {
            block: 1,
            inst: 2,
            kind: MachineErrorKind::TwoAddress,
            message: "two-address violation".to_string(),
        };
        let d = Diagnostic::from(&e);
        assert_eq!(d.code, M_TWO_ADDRESS);
        assert_eq!((d.block, d.inst), (1, 2));
    }

    #[test]
    fn model_diagnostic_maps_to_stable_code() {
        let d = Diagnostic::from(ModelDiagnostic {
            kind: ModelCheckKind::OverlapPartition,
            message: "r7 appears in no overlap group".to_string(),
        });
        assert_eq!(d.code, M_OVERLAP_PARTITION);
        assert_eq!((d.block, d.inst), (0, 0));
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn deterministic_ordering() {
        let mut ds = vec![
            Diagnostic::warning(L_SELF_MOVE, 1, 0, "b"),
            Diagnostic::error(T_WRONG_VALUE, 0, 5, "a"),
            Diagnostic::warning(L_REDUNDANT_RELOAD, 0, 5, "c"),
        ];
        sort_diagnostics(&mut ds);
        assert_eq!(ds[0].code, T_WRONG_VALUE);
        assert_eq!(ds[1].code, L_REDUNDANT_RELOAD);
        assert_eq!(ds[2].code, L_SELF_MOVE);
    }

    #[test]
    fn emitters_render_and_escape() {
        let mut rep = Report::default();
        rep.push(
            "f\"1",
            vec![Diagnostic::error(
                T_WRONG_VALUE,
                0,
                1,
                "reg \"eax\" is\nwrong",
            )],
        );
        let text = rep.to_text();
        assert!(text.contains("b0:1: error [T002]"));
        let json = rep.to_json();
        assert!(json.contains("\\\"eax\\\""));
        assert!(json.contains("\\n"));
        let sarif = rep.to_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"ruleId\": \"T002\""));
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.count_of(T_WRONG_VALUE), 1);
    }
}
