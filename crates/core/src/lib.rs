//! The ORA-style 0-1 integer-programming register allocator with precise
//! models of irregular-architecture features — the primary contribution of
//! Kong & Wilken, *Precise Register Allocation for Irregular
//! Architectures* (MICRO 1998).
//!
//! # Architecture
//!
//! The allocator follows the three-module ORA structure of §2 / Fig. 1 of
//! the paper:
//!
//! 1. **Analysis** ([`analysis`]): walks the function, liveness and profile
//!    to find every point where a register-allocation decision must be
//!    made, producing symbolic-register *events* (definitions, uses, calls
//!    crossed, block boundaries) and the segments between them.
//! 2. **Solver** ([`build`] + the `regalloc-ilp` crate): turns the decision
//!    table into a 0-1 integer program — one binary variable per possible
//!    allocation action, costed by the §4 model
//!    `cost(x) = A·cycle(x) + B·size(x) + C·data(x)` — and solves it.
//!    The irregular-architecture extensions of §5 are all here:
//!    * combined source/destination specifiers with optimal copy insertion
//!      ([`irregular::two_address`], §5.1),
//!    * separate and combined source/destination *memory* operands
//!      ([`irregular::mem_operand`], §5.2),
//!    * overlapping registers via generalised single-symbolic constraints
//!      ([`irregular::overlap`], §5.3),
//!    * per-register encoding costs and exclusions — short AL/AX/EAX
//!      opcodes, ESP/EBP addressing penalties, scaled-index exclusion —
//!      supplied by the machine model and priced into use/def variables
//!      (§5.4),
//!    * predefined memory symbolic registers with home-location coalescing
//!      ([`irregular::predefined`], §5.5).
//! 3. **Rewrite** ([`rewrite`]): reads the solved decision variables back
//!    out of the table and rewrites the function — real registers
//!    substituted, spill loads/stores/rematerialisations/copies inserted,
//!    deletable copies removed.
//!
//! Functions the solver cannot finish within its budget receive the
//! [`fallback`] spill-everything allocation (as unsolved functions fell
//! back to GCC's allocator in the paper), so [`IpAllocator::allocate`]
//! always returns runnable code; [`AllocOutcome::solved`] and
//! [`AllocOutcome::solved_optimally`] carry the Table 2 taxonomy.
//!
//! # Example
//!
//! ```
//! use regalloc_ir::{FunctionBuilder, Width, BinOp, Operand};
//! use regalloc_x86::X86Machine;
//! use regalloc_core::IpAllocator;
//!
//! let mut b = FunctionBuilder::new("f");
//! let p = b.new_param("p", Width::B32);
//! let x = b.new_sym(Width::B32);
//! let y = b.new_sym(Width::B32);
//! b.load_global(x, p);
//! b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(1));
//! b.ret(Some(y));
//! let f = b.finish();
//!
//! let machine = X86Machine::pentium();
//! let out = IpAllocator::new(&machine).allocate(&f).unwrap();
//! assert!(out.solved_optimally);
//! assert!(regalloc_ir::verify_allocated(&out.func).is_ok());
//! ```

pub mod analysis;
pub mod build;
pub mod check;
pub mod cost;
pub mod fallback;
pub mod irregular;
pub mod pipeline;
pub mod rewrite;
pub mod stats;
pub mod symbolic;
pub mod targets;
pub mod warm;

use std::time::{Duration, Instant};

use regalloc_ilp::{solve, SolverConfig, Status};
use regalloc_ir::{Cfg, Function, Liveness, LoopInfo, Profile};
use regalloc_machine::{refuses, Machine};

pub use cost::CostModel;
pub use pipeline::{
    AllocReport, AuditSummary, BaselineAllocator, Demotion, DonorSolution, FaultPlan, ReasonCode,
    RobustAllocator, RobustOutcome, Rung, WarmStartKind,
};
pub use stats::SpillStats;
pub use symbolic::{EventDecision, EventKey, RoleDecision, SymbolicSolution};

/// Why a function could not be allocated at all.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// The function manipulates values of a width whose register class is
    /// empty on the target machine, so it is not attempted (the paper's
    /// "not attempted" 64-bit rule of Table 2, generalised: the MCU model
    /// additionally refuses 32-bit values).
    WidthRefused,
    /// The solver produced no usable solution and the spill-everything
    /// fallback itself failed (a machine model without enough scratch
    /// registers for some instruction shape).
    Fallback(fallback::FallbackError),
    /// Every rung of the [`pipeline::RobustAllocator`] degradation
    /// ladder failed to produce a validated allocation — including the
    /// spill-everything rung of last resort.
    LadderExhausted,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::WidthRefused => {
                write!(f, "function uses values of a width the target refuses")
            }
            AllocError::Fallback(e) => write!(f, "fallback allocation failed: {e}"),
            AllocError::LadderExhausted => {
                write!(f, "every rung of the degradation ladder failed validation")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The result of allocating one function.
#[derive(Clone, Debug)]
pub struct AllocOutcome {
    /// The rewritten function (all registers physical, spill code
    /// inserted). When `solved` is false this is the [`fallback`]
    /// allocation.
    pub func: Function,
    /// Spill-code accounting for the Table 3 comparison.
    pub stats: SpillStats,
    /// True if the IP solver produced the allocation (Table 2 "solved").
    pub solved: bool,
    /// True if the solver also proved optimality (Table 2 "optimal").
    pub solved_optimally: bool,
    /// Constraints in the integer program (Figs. 9 and 10).
    pub num_constraints: usize,
    /// Decision variables in the integer program.
    pub num_vars: usize,
    /// Intermediate instructions analysed (x-axis of Fig. 9).
    pub num_insts: usize,
    /// Time spent in the IP solver.
    pub solve_time: Duration,
    /// Time spent building the model.
    pub build_time: Duration,
    /// Branch-and-bound nodes used.
    pub solver_nodes: u64,
}

/// The integer-programming register allocator.
///
/// Construct with a [`Machine`] model, optionally adjust the cost weights
/// and solver budget, then call [`IpAllocator::allocate`] per function.
#[derive(Clone, Debug)]
pub struct IpAllocator<'m, M: ?Sized> {
    machine: &'m M,
    cost: CostModel,
    solver: SolverConfig,
}

impl<'m, M: Machine + ?Sized> IpAllocator<'m, M> {
    /// An allocator with the paper's experimental cost weights
    /// (`B = 1000`, `C = 0`) and the default solver budget.
    pub fn new(machine: &'m M) -> IpAllocator<'m, M> {
        IpAllocator {
            machine,
            cost: CostModel::paper(),
            solver: SolverConfig::default(),
        }
    }

    /// Replace the cost model (e.g. [`CostModel::size_only`] for embedded
    /// code-size optimisation, §4).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the solver budget (the paper's analogue is the CPLEX
    /// 1024-second per-function limit).
    pub fn with_solver_config(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// The machine model in use.
    pub fn machine(&self) -> &M {
        self.machine
    }

    /// Allocate registers for `f`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::WidthRefused`] for functions the allocator
    /// does not attempt on this machine.
    pub fn allocate(&self, f: &Function) -> Result<AllocOutcome, AllocError> {
        if refuses(self.machine, f) {
            return Err(AllocError::WidthRefused);
        }
        let cfg = Cfg::new(f);
        let loops = LoopInfo::new(f, &cfg);
        let profile = Profile::estimate(f, &cfg, &loops);
        self.allocate_with_profile(f, &cfg, &profile)
    }

    /// Allocate with an externally supplied profile (the factor *A* of the
    /// cost model).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::WidthRefused`] for functions the allocator
    /// does not attempt on this machine.
    pub fn allocate_with_profile(
        &self,
        f: &Function,
        cfg: &Cfg,
        profile: &Profile,
    ) -> Result<AllocOutcome, AllocError> {
        if refuses(self.machine, f) {
            return Err(AllocError::WidthRefused);
        }
        let live = Liveness::new(f, cfg);

        let t0 = Instant::now();
        let analysis = analysis::analyze(f, cfg, &live, self.machine);
        let built = build::build_model(f, cfg, profile, &analysis, self.machine, &self.cost);
        let build_time = t0.elapsed();

        let num_constraints = built.model.num_rows();
        let num_vars = built.model.num_vars();

        // Seed the search with the spill-everything assignment: the solver
        // then always has an allocation to return (Table 2 "solved") and
        // an upper bound to prune against from the first node. A machine
        // model without an admissible scratch register somewhere yields no
        // warm start; the solver then runs cold.
        let warm = warm::spill_everything_assignment(f, &analysis, &built, self.machine);
        let sol = solve(&built.model, &self.solver, warm.as_deref());
        let solve_time = sol.solve_time;
        // Table 2 semantics: "solved" means the *solver* produced an
        // allocation (an optimality proof or an incumbent it found
        // itself); returning only the seeded warm start counts as
        // unsolved, exactly as a CPLEX timeout with no incumbent did in
        // the paper — though the warm-start allocation is still used for
        // the emitted code.
        let (solved, optimal) = match sol.status {
            Status::Optimal => (true, true),
            Status::Feasible => (!sol.warm_start_only, false),
            Status::Infeasible | Status::Unknown | Status::NumericalTrouble => (false, false),
        };

        let (func, stats) = if sol.has_solution() {
            rewrite::apply(f, profile, &analysis, &built, &sol.values, self.machine)
        } else {
            fallback::spill_everything(f, profile, self.machine).map_err(AllocError::Fallback)?
        };

        Ok(AllocOutcome {
            func,
            stats,
            solved,
            solved_optimally: optimal,
            num_constraints,
            num_vars,
            num_insts: f.num_insts(),
            solve_time,
            build_time,
            solver_nodes: sol.nodes,
        })
    }

    /// Build the integer program without solving it (used by the model-
    /// size experiments, Figs. 9/10 and the x86-vs-RISC comparison).
    pub fn build_only(&self, f: &Function) -> Result<build::BuiltModel, AllocError> {
        if refuses(self.machine, f) {
            return Err(AllocError::WidthRefused);
        }
        let cfg = Cfg::new(f);
        let loops = LoopInfo::new(f, &cfg);
        let profile = Profile::estimate(f, &cfg, &loops);
        let live = Liveness::new(f, &cfg);
        let analysis = analysis::analyze(f, &cfg, &live, self.machine);
        Ok(build::build_model(
            f,
            &cfg,
            &profile,
            &analysis,
            self.machine,
            &self.cost,
        ))
    }
}
