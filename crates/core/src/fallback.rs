//! The spill-everything fallback allocation.
//!
//! Functions whose integer program cannot be solved within the budget
//! still need runnable code (in the paper they fall back to the default
//! allocator). This module produces the simplest correct allocation:
//! every symbolic register lives in its spill slot; each instruction
//! loads its operands into scratch registers chosen to satisfy the
//! machine's operand constraints (width classes, pinned registers,
//! two-address form, overlap), and stores its result back.
//!
//! The fallback is also a useful worst-case baseline: its overhead is what
//! a register allocator exists to remove.

use std::collections::HashMap;

use regalloc_ir::{Dst, Function, Inst, Loc, Operand, PhysReg, Profile, SlotId, SymId};
use regalloc_x86::Machine;

use crate::stats::SpillStats;

/// Why the spill-everything fallback could not allocate a function.
///
/// The fallback is the last rung of every degradation ladder, so it must
/// never panic: when an instruction's operand pinnings cannot be
/// satisfied with the machine's scratch registers it reports *which*
/// symbolic register failed and lets the caller surface the error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FallbackError {
    /// No scratch register satisfied a use occurrence's constraints
    /// without overlapping the registers already handed to the other
    /// operands of the same instruction.
    NoScratchRegister { sym: SymId },
    /// No register was admitted by the definition constraints of the
    /// instruction defining `sym`.
    NoDefRegister { sym: SymId },
}

impl std::fmt::Display for FallbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackError::NoScratchRegister { sym } => write!(
                f,
                "spill-everything fallback: ran out of scratch registers for {sym}"
            ),
            FallbackError::NoDefRegister { sym } => write!(
                f,
                "spill-everything fallback: no definition register admitted for {sym}"
            ),
        }
    }
}

impl std::error::Error for FallbackError {}

/// Allocate `f` by spilling every symbolic register.
///
/// # Errors
///
/// Returns a [`FallbackError`] if an instruction's operand pinnings
/// cannot be satisfied with the machine's scratch registers — impossible
/// for the instruction shapes the IR builder produces on the provided
/// machine models, but a machine model with too few registers in a width
/// class can trigger it.
pub fn spill_everything<M: Machine + ?Sized>(
    f: &Function,
    profile: &Profile,
    machine: &M,
) -> Result<(Function, SpillStats), FallbackError> {
    let mut nf = f.clone();
    let mut stats = SpillStats::default();
    let sc = *machine.spill_costs();
    let mut slots: HashMap<SymId, SlotId> = HashMap::new();
    let mut slot_of = |s: SymId, nf: &mut Function| -> SlotId {
        *slots
            .entry(s)
            .or_insert_with(|| nf.add_slot(f.sym_width(s), None))
    };

    for b in f.block_ids() {
        let freq = profile.freq(b) as i64;
        let mut out: Vec<Inst> = Vec::new();
        for inst in &f.block(b).insts {
            let mut new = inst.clone();
            // Swap a commutative immediate lhs so a register source sits
            // in the combined (two-address) position.
            if let Inst::Bin { op, lhs, rhs, .. } = &mut new {
                if machine.is_two_address(inst)
                    && op.is_commutative()
                    && !matches!(lhs, Operand::Loc(Loc::Sym(_)))
                    && matches!(rhs, Operand::Loc(Loc::Sym(_)))
                {
                    std::mem::swap(lhs, rhs);
                }
            }

            // Choose a register per use occurrence, in visit order,
            // respecting pinnings and avoiding overlap between distinct
            // symbolics. The same symbolic reuses its register when the
            // occurrence's constraint admits it.
            let mut taken: Vec<(SymId, PhysReg)> = Vec::new();
            let mut role_regs: Vec<(SymId, PhysReg)> = Vec::new();
            let mut use_err: Option<FallbackError> = None;
            {
                let probe = new.clone();
                probe.visit_uses(&mut |l, role| {
                    if use_err.is_some() {
                        return;
                    }
                    if let Loc::Sym(s) = l {
                        let w = f.sym_width(s);
                        let c = machine.use_constraints(&probe, role, w);
                        let reuse = taken
                            .iter()
                            .find(|(ts, tr)| *ts == s && c.admits(*tr))
                            .map(|(_, tr)| *tr);
                        let fresh = reuse.or_else(|| {
                            machine.regs_for_width(w).iter().copied().find(|r| {
                                c.admits(*r)
                                    && !taken.iter().any(|(ts, tr)| {
                                        *ts != s && machine.aliases(*tr).contains(r)
                                    })
                            })
                        });
                        let r = match fresh {
                            Some(r) => r,
                            None => {
                                use_err = Some(FallbackError::NoScratchRegister { sym: s });
                                return;
                            }
                        };
                        if reuse.is_none() {
                            taken.push((s, r));
                        }
                        role_regs.push((s, r));
                    }
                });
            }
            if let Some(e) = use_err {
                return Err(e);
            }

            // Definition register: the lhs-position register for
            // two-address instructions, else the first admitted register.
            let def_reg: Option<PhysReg> = match new.sym_def() {
                None => None,
                Some(d) => {
                    let w = f.sym_width(d);
                    // lhs/src is visited first for Bin/Un, so two-address
                    // instructions reuse the lhs-position register.
                    let two_addr = if machine.is_two_address(&new) {
                        role_regs.first().map(|&(_, r)| r)
                    } else {
                        None
                    };
                    let r = match two_addr {
                        Some(r) => r,
                        None => {
                            let c = machine.def_constraints(&new, w);
                            machine
                                .regs_for_width(w)
                                .iter()
                                .copied()
                                .find(|r| c.admits(*r))
                                .ok_or(FallbackError::NoDefRegister { sym: d })?
                        }
                    };
                    Some(r)
                }
            };

            // Emit the loads (one per distinct (symbolic, register) pair).
            let mut emitted: Vec<(SymId, PhysReg)> = Vec::new();
            for &(s, r) in &role_regs {
                if emitted.contains(&(s, r)) {
                    continue;
                }
                emitted.push((s, r));
                let slot = slot_of(s, &mut nf);
                out.push(Inst::SpillLoad {
                    dst: Loc::Real(r),
                    slot,
                    width: f.sym_width(s),
                });
                stats.loads += freq;
                stats.code_bytes += sc.load_bytes as i64;
            }

            // Apply: use occurrences in visit order, then the definition.
            let n_uses = role_regs.len();
            let mut k = 0;
            new.visit_locs_mut(&mut |l| {
                if matches!(l, Loc::Sym(_)) {
                    if k < n_uses {
                        *l = Loc::Real(role_regs[k].1);
                        k += 1;
                    } else {
                        *l = Loc::Real(def_reg.expect("definition register"));
                    }
                }
            });
            // Two-address: the dst equals the lhs-position register by
            // construction of `def_reg`.
            if let (true, Some(dr)) = (machine.is_two_address(inst), def_reg) {
                match &mut new {
                    Inst::Bin { dst, .. } | Inst::Un { dst, .. } => *dst = Dst::Loc(Loc::Real(dr)),
                    _ => {}
                }
            }
            out.push(new);

            // Store the result.
            if let Some(d) = inst.sym_def() {
                let slot = slot_of(d, &mut nf);
                out.push(Inst::SpillStore {
                    slot,
                    src: Loc::Real(def_reg.unwrap()),
                    width: f.sym_width(d),
                });
                stats.stores += freq;
                stats.code_bytes += sc.store_bytes as i64;
            }
        }
        nf.block_mut(b).insts = out;
    }
    Ok((nf, stats))
}
