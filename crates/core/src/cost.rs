//! The §4 cost model: `cost(x) = A·cycle(x) + B·size(x) + C·data(x)`.

/// Cost-model weights.
///
/// * `A` is per-action: the execution count of the instruction the action
///   applies to, supplied by the [`Profile`](regalloc_ir::Profile);
/// * [`b`](CostModel::b) weights each byte of instruction-size increase
///   (memory-hierarchy delay per code byte);
/// * [`c`](CostModel::c) weights each byte of data-memory traffic.
///
/// The paper's experiments use the simplified model `B = 1000`, `C = 0`
/// ([`CostModel::paper`]); §4 also motivates a pure code-size mode for
/// embedded targets ([`CostModel::size_only`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Weight per byte of instruction-size increase (the paper's `B`).
    pub b: i64,
    /// Weight per byte of data-memory access (the paper's `C`).
    pub c: i64,
    /// Weight applied to the cycle component (1 in the paper; 0 in the
    /// size-only mode).
    pub cycle_weight: i64,
}

impl CostModel {
    /// The paper's experimental weights: cycles fully weighted,
    /// `B = 1000` (≈ cycles to fault in one byte of code from disk),
    /// `C = 0`.
    pub fn paper() -> CostModel {
        CostModel {
            b: 1000,
            c: 0,
            cycle_weight: 1,
        }
    }

    /// Optimise purely for program size (§4): cycle and data components
    /// excluded entirely.
    pub fn size_only() -> CostModel {
        CostModel {
            b: 1,
            c: 0,
            cycle_weight: 0,
        }
    }

    /// Evaluate eq. (1) for one allocation action.
    ///
    /// `freq` is the factor *A* (execution count of the instruction the
    /// action applies to), `cycles` the action's processor cycles, `bytes`
    /// its instruction-size increase, `data_bytes` its data-memory
    /// traffic.
    pub fn action_cost(&self, freq: u64, cycles: u64, bytes: u64, data_bytes: u64) -> i64 {
        self.cycle_weight * (freq as i64) * (cycles as i64)
            + self.b * (bytes as i64)
            + self.c * (data_bytes as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights() {
        let m = CostModel::paper();
        // A load executed 10 times: 10 cycles + 3 bytes × 1000.
        assert_eq!(m.action_cost(10, 1, 3, 4), 10 + 3000);
    }

    #[test]
    fn size_only_ignores_cycles_and_data() {
        let m = CostModel::size_only();
        assert_eq!(m.action_cost(1_000_000, 5, 3, 4), 3);
    }

    #[test]
    fn zero_byte_actions_cost_cycles_only() {
        let m = CostModel::paper();
        assert_eq!(m.action_cost(7, 2, 0, 0), 14);
    }
}
