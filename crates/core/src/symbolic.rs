//! Portable symbolic solutions: allocation decisions keyed by stable IR
//! coordinates instead of `VarId` bit positions.
//!
//! A solved allocation normally exists only as a dense `Vec<bool>` over
//! one exact [`BuiltModel`](crate::build::BuiltModel)'s variable space —
//! rebuild the model (or build it for a *different* function) and the
//! bit positions mean nothing. A [`SymbolicSolution`] re-expresses every
//! decision in coordinates that survive outside the model that minted
//! it:
//!
//! * an [`EventKey`] — `(symbolic, block, instruction-slot)` — names each
//!   allocation event the way the analysis derives it from the IR, so
//!   the same source position maps to the same key across rebuilds and
//!   across *similar* functions;
//! * an [`EventDecision`] records the chosen actions in [`PhysReg`]
//!   terms (which register was loaded into, which register each use
//!   occupies, whether the value was stored, …) plus the residence of
//!   the event's *outgoing* segment — well-defined because every segment
//!   is created by exactly one event's `gout`.
//!
//! The representation supports three operations, all on `BuiltModel`:
//! `lift` (decision vector → symbolic), `lower` (symbolic → decision
//! vector, strict: every recorded choice must name an existing
//! variable), and `project` (symbolic → decision vector over a
//! *different* function's model, tolerant: events that don't map keep a
//! caller-supplied fallback assignment). Lowered and projected vectors
//! are never trusted — callers gate them through
//! [`Model::is_feasible`](regalloc_ilp::Model::is_feasible) and the full
//! validation ladder, so a bad projection costs solver seeding, never
//! correctness.

use regalloc_ir::PhysReg;

/// Stable coordinate of one allocation event: the symbolic register, the
/// containing block, and the instruction index within the block (`None`
/// for block-entry events).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    /// Symbolic-register number.
    pub sym: u32,
    /// Block number.
    pub block: u32,
    /// Instruction slot within the block (`None` = block entry).
    pub inst: Option<u32>,
}

/// The decision taken for one use position (role) of an event.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RoleDecision {
    /// Registers whose use variable is set (normally exactly one).
    pub regs: Vec<PhysReg>,
    /// The §5.2 memory-operand use was chosen.
    pub mem: bool,
    /// Registers whose §5.1 use-end variable is set.
    pub ends: Vec<PhysReg>,
}

/// Every decision of one event, in physical-register terms.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EventDecision {
    /// Block-entry join residence registers (multi-predecessor joins).
    pub join_regs: Vec<PhysReg>,
    /// Block-entry join slot validity (`jm`).
    pub join_mem: bool,
    /// Registers reloaded into before the instruction.
    pub loads: Vec<PhysReg>,
    /// Registers rematerialised into before the instruction.
    pub remats: Vec<PhysReg>,
    /// Registers reloaded into after a call.
    pub loads_post: Vec<PhysReg>,
    /// Registers rematerialised into after a call.
    pub remats_post: Vec<PhysReg>,
    /// The value was stored to its spill slot here.
    pub store: bool,
    /// The register defined here, if any.
    pub def: Option<PhysReg>,
    /// The §5.2 combined memory use/def was chosen.
    pub combined: bool,
    /// Registers copied into before the instruction (§5.1).
    pub copies: Vec<PhysReg>,
    /// Registers whose copy-deletion conjunction (`dz`) is set.
    pub deletes: Vec<PhysReg>,
    /// Per-role decisions, parallel to the event's role list.
    pub roles: Vec<RoleDecision>,
    /// Residence registers of the outgoing segment created by this event.
    pub out_regs: Vec<PhysReg>,
    /// Slot validity of the outgoing segment.
    pub out_mem: bool,
}

/// A complete allocation expressed in stable IR coordinates.
///
/// Decisions are stored sorted by key, so equality and serialization are
/// deterministic regardless of construction order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SymbolicSolution {
    decisions: Vec<(EventKey, EventDecision)>,
}

fn regs_field(out: &mut String, tag: &str, regs: &[PhysReg]) {
    use std::fmt::Write;
    if !regs.is_empty() {
        let names: Vec<String> = regs.iter().map(|r| format!("r{}", r.0)).collect();
        write!(out, " {tag}={}", names.join("+")).unwrap();
    }
}

fn parse_regs(s: &str) -> Option<Vec<PhysReg>> {
    s.split('+')
        .map(|r| r.strip_prefix('r')?.parse().ok().map(PhysReg))
        .collect()
}

impl SymbolicSolution {
    /// Build from an unordered decision list.
    pub fn from_decisions(mut decisions: Vec<(EventKey, EventDecision)>) -> SymbolicSolution {
        decisions.sort_by_key(|(k, _)| *k);
        SymbolicSolution { decisions }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// True when no decisions are recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The decision for `key`, if recorded.
    pub fn get(&self, key: &EventKey) -> Option<&EventDecision> {
        self.decisions
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.decisions[i].1)
    }

    /// All decisions, sorted by key.
    pub fn decisions(&self) -> &[(EventKey, EventDecision)] {
        &self.decisions
    }

    /// Render as a line-oriented text block (one line per event), stable
    /// across processes — the persistence format of the driver's cache.
    pub fn serialize(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (k, d) in &self.decisions {
            match k.inst {
                Some(i) => write!(out, "s{} b{} i{}", k.sym, k.block, i).unwrap(),
                None => write!(out, "s{} b{} entry", k.sym, k.block).unwrap(),
            }
            regs_field(&mut out, "join", &d.join_regs);
            if d.join_mem {
                out.push_str(" jm");
            }
            regs_field(&mut out, "ld", &d.loads);
            regs_field(&mut out, "rm", &d.remats);
            regs_field(&mut out, "lp", &d.loads_post);
            regs_field(&mut out, "rp", &d.remats_post);
            if d.store {
                out.push_str(" st");
            }
            if let Some(r) = d.def {
                write!(out, " def=r{}", r.0).unwrap();
            }
            if d.combined {
                out.push_str(" cmb");
            }
            regs_field(&mut out, "cp", &d.copies);
            regs_field(&mut out, "dz", &d.deletes);
            for (ri, role) in d.roles.iter().enumerate() {
                regs_field(&mut out, &format!("u{ri}"), &role.regs);
                if role.mem {
                    write!(out, " m{ri}").unwrap();
                }
                regs_field(&mut out, &format!("e{ri}"), &role.ends);
            }
            // Role count is explicit so empty trailing roles round-trip.
            write!(out, " roles={}", d.roles.len()).unwrap();
            regs_field(&mut out, "out", &d.out_regs);
            if d.out_mem {
                out.push_str(" om");
            }
            out.push('\n');
        }
        out
    }

    /// Parse the [`SymbolicSolution::serialize`] format. Any malformed
    /// line rejects the whole block (`None`): a symbolic solution is an
    /// accelerator, and a damaged one must read as absent, not partial.
    pub fn deserialize(text: &str) -> Option<SymbolicSolution> {
        let mut decisions = Vec::new();
        for line in text.lines() {
            let mut fields = line.split(' ');
            let sym: u32 = fields.next()?.strip_prefix('s')?.parse().ok()?;
            let block: u32 = fields.next()?.strip_prefix('b')?.parse().ok()?;
            let inst = match fields.next()? {
                "entry" => None,
                i => Some(i.strip_prefix('i')?.parse().ok()?),
            };
            let mut d = EventDecision::default();
            let mut roles: Vec<(usize, RoleDecision)> = Vec::new();
            let role_at = |roles: &mut Vec<(usize, RoleDecision)>, ri: usize| -> usize {
                match roles.iter().position(|(i, _)| *i == ri) {
                    Some(p) => p,
                    None => {
                        roles.push((ri, RoleDecision::default()));
                        roles.len() - 1
                    }
                }
            };
            let mut role_count: usize = 0;
            for field in fields {
                match field {
                    "jm" => d.join_mem = true,
                    "st" => d.store = true,
                    "cmb" => d.combined = true,
                    "om" => d.out_mem = true,
                    _ => {
                        if let Some((tag, val)) = field.split_once('=') {
                            match tag {
                                "join" => d.join_regs = parse_regs(val)?,
                                "ld" => d.loads = parse_regs(val)?,
                                "rm" => d.remats = parse_regs(val)?,
                                "lp" => d.loads_post = parse_regs(val)?,
                                "rp" => d.remats_post = parse_regs(val)?,
                                "st" => return None,
                                "def" => {
                                    d.def = Some(PhysReg(val.strip_prefix('r')?.parse().ok()?))
                                }
                                "cp" => d.copies = parse_regs(val)?,
                                "dz" => d.deletes = parse_regs(val)?,
                                "out" => d.out_regs = parse_regs(val)?,
                                "roles" => role_count = val.parse().ok()?,
                                _ => {
                                    let (kind, ri) = tag.split_at(1);
                                    let ri: usize = ri.parse().ok()?;
                                    let p = role_at(&mut roles, ri);
                                    match kind {
                                        "u" => roles[p].1.regs = parse_regs(val)?,
                                        "e" => roles[p].1.ends = parse_regs(val)?,
                                        _ => return None,
                                    }
                                }
                            }
                        } else if let Some(ri) = field.strip_prefix('m') {
                            let ri: usize = ri.parse().ok()?;
                            let p = role_at(&mut roles, ri);
                            roles[p].1.mem = true;
                        } else {
                            return None;
                        }
                    }
                }
            }
            d.roles = vec![RoleDecision::default(); role_count];
            for (ri, role) in roles {
                if ri >= role_count {
                    return None;
                }
                d.roles[ri] = role;
            }
            decisions.push((EventKey { sym, block, inst }, d));
        }
        Some(SymbolicSolution::from_decisions(decisions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SymbolicSolution {
        SymbolicSolution::from_decisions(vec![
            (
                EventKey {
                    sym: 1,
                    block: 0,
                    inst: Some(3),
                },
                EventDecision {
                    loads: vec![PhysReg(2)],
                    store: true,
                    def: Some(PhysReg(0)),
                    roles: vec![
                        RoleDecision {
                            regs: vec![PhysReg(2)],
                            mem: false,
                            ends: vec![PhysReg(2)],
                        },
                        RoleDecision {
                            regs: Vec::new(),
                            mem: true,
                            ends: Vec::new(),
                        },
                    ],
                    out_regs: vec![PhysReg(0)],
                    out_mem: true,
                    ..EventDecision::default()
                },
            ),
            (
                EventKey {
                    sym: 0,
                    block: 2,
                    inst: None,
                },
                EventDecision {
                    join_regs: vec![PhysReg(1), PhysReg(3)],
                    join_mem: true,
                    out_mem: true,
                    ..EventDecision::default()
                },
            ),
        ])
    }

    #[test]
    fn serialization_round_trips() {
        let s = sample();
        let text = s.serialize();
        let back = SymbolicSolution::deserialize(&text).expect("parses");
        assert_eq!(back, s);
        // Keys come back sorted regardless of input order.
        assert!(back.decisions()[0].0 < back.decisions()[1].0);
    }

    #[test]
    fn empty_roles_round_trip() {
        let s = SymbolicSolution::from_decisions(vec![(
            EventKey {
                sym: 5,
                block: 1,
                inst: Some(0),
            },
            EventDecision {
                roles: vec![RoleDecision::default(); 2],
                ..EventDecision::default()
            },
        )]);
        let back = SymbolicSolution::deserialize(&s.serialize()).expect("parses");
        assert_eq!(back.decisions()[0].1.roles.len(), 2);
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_lines_reject_the_block() {
        assert!(SymbolicSolution::deserialize("s1 b0 i3 bogus\n").is_none());
        assert!(SymbolicSolution::deserialize("b0 i3\n").is_none());
        assert!(SymbolicSolution::deserialize("s1 b0 i3 u9=r1 roles=1\n").is_none());
        assert!(SymbolicSolution::deserialize("").is_some_and(|s| s.is_empty()));
    }
}
