//! The concrete target registry.
//!
//! `regalloc-machine` defines [`TargetId`] but stays free of backend
//! dependencies; this module, sitting above every backend crate, is the
//! one place that maps an identifier to a live [`Machine`] model. The
//! driver's `--target` flag, the serve protocol's `target=` field and
//! the fuzzer's per-target campaigns all resolve through here.

use regalloc_machine::{Machine, TargetId};

/// Construct the machine model registered under `id`.
///
/// The x86 entry is the paper's Pentium configuration — the exact model
/// the golden-output byte-identity suite pins down.
pub fn machine_for(id: TargetId) -> Box<dyn Machine + Send + Sync> {
    match id {
        TargetId::X86Pentium => Box::new(regalloc_x86::X86Machine::pentium()),
        TargetId::Risc24 => Box::new(regalloc_x86::RiscMachine::new()),
        TargetId::Mcu => Box::new(regalloc_mcu::McuMachine::new()),
    }
}

/// Every registered target with its model, in [`TargetId::ALL`] order.
pub fn all() -> impl Iterator<Item = (TargetId, Box<dyn Machine + Send + Sync>)> {
    TargetId::ALL.into_iter().map(|id| (id, machine_for(id)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_target() {
        for (id, m) in all() {
            assert!(!m.name().is_empty(), "{id}");
            // Every registered model passes its own structural self-check.
            let diags = regalloc_machine::check_machine(m.as_ref());
            assert!(diags.is_empty(), "{id}: {diags:?}");
        }
    }

    #[test]
    fn registry_matches_the_paper_configuration() {
        let x86 = machine_for(TargetId::X86Pentium);
        assert_eq!(x86.name(), "x86 (Pentium)");
        let mcu = machine_for(TargetId::Mcu);
        assert!(mcu.regs_for_width(regalloc_ir::Width::B32).is_empty());
    }
}
