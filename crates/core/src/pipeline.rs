//! The fault-tolerant allocation pipeline: a staged degradation ladder
//! around the IP allocator.
//!
//! The paper's experimental setup quietly assumes every stage of the
//! allocator runs to completion: the model builds, CPLEX answers within
//! its 1024-second budget, the rewrite applies cleanly. A production
//! allocator cannot assume any of that — a solver can hit numerical
//! trouble, a budget can expire, and a bug anywhere in the pipeline must
//! degrade the *quality* of the allocation, never the *correctness* of
//! the compiler. [`RobustAllocator`] makes the paper's implicit fallback
//! story (unsolved functions go to GCC's allocator) explicit and total:
//!
//! 1. **IP-optimal** — the solver proves optimality ([`Rung::IpOptimal`]).
//! 2. **IP-incumbent** — the solver found its own feasible incumbent but
//!    no proof within the budget ([`Rung::IpIncumbent`]).
//! 3. **Warm start** — the seeded spill-everything *assignment* applied
//!    through the normal rewrite path ([`Rung::WarmStart`]).
//! 4. **Graph coloring** — the baseline allocator, injected through
//!    [`BaselineAllocator`] ([`Rung::Coloring`]).
//! 5. **Spill everything** — the [`crate::fallback`] allocation
//!    ([`Rung::SpillAll`]).
//!
//! No rung's output is trusted. Every candidate must pass structural
//! verification ([`regalloc_ir::verify_allocated`]) *and* an
//! interpreter-equivalence run ([`crate::check::equivalent`]) against the
//! original function before it is accepted; any failure — a panic
//! (isolated with [`std::panic::catch_unwind`]), an expired deadline,
//! solver numerical trouble, or a validation divergence — demotes the
//! ladder to the next rung and records a structured [`ReasonCode`] in the
//! per-function [`AllocReport`].
//!
//! A seeded [`FaultPlan`] can inject failures (forced solver timeouts,
//! panics in build/rewrite, bit-flipped solution vectors) to exercise
//! every demotion edge deterministically; the reason codes recorded are
//! always the *observed* failure, so a corrupted solution vector shows up
//! as the validation failure that caught it.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use regalloc_ilp::{solve_seeded_traced, Deadline, Incumbent, SolverConfig, SolverHealth, Status};
use regalloc_ir::{verify_allocated, Cfg, Function, Liveness, LoopInfo, Profile};
use regalloc_machine::{refuses, Machine};
use regalloc_obs::{Event, Phase, Tracer};

use crate::stats::SpillStats;
use crate::symbolic::SymbolicSolution;
use crate::{analysis, build, check, fallback, rewrite, warm, AllocError, CostModel};

/// The ladder position an allocation came from, best to worst.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Rung {
    /// The IP solver proved the allocation optimal (Table 2 "optimal").
    IpOptimal,
    /// The IP solver found its own incumbent but no optimality proof
    /// (Table 2 "solved", not "optimal").
    IpIncumbent,
    /// The seeded spill-everything assignment applied through the normal
    /// rewrite path — the solver itself produced nothing usable.
    WarmStart,
    /// The injected graph-coloring baseline allocator.
    Coloring,
    /// The last-resort spill-everything fallback.
    SpillAll,
}

impl Rung {
    /// All rungs, best to worst.
    pub const ALL: [Rung; 5] = [
        Rung::IpOptimal,
        Rung::IpIncumbent,
        Rung::WarmStart,
        Rung::Coloring,
        Rung::SpillAll,
    ];

    /// Short stable name (used by the report tables).
    pub fn name(self) -> &'static str {
        match self {
            Rung::IpOptimal => "ip-optimal",
            Rung::IpIncumbent => "ip-incumbent",
            Rung::WarmStart => "warm-start",
            Rung::Coloring => "coloring",
            Rung::SpillAll => "spill-all",
        }
    }

    /// Inverse of [`Rung::name`] (metrics-label and cache parsing).
    pub fn from_name(name: &str) -> Option<Rung> {
        Rung::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a rung was demoted past.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ReasonCode {
    /// The solver's wall-clock budget (or the shared per-function
    /// deadline) expired before this rung could produce anything.
    SolverTimeout,
    /// The solver stopped on a resource limit other than time (nodes,
    /// model size) without producing anything for this rung.
    SolverLimit,
    /// The solver reported numerical trouble (NaN/Inf contamination,
    /// simplex cycling) and its answer cannot be trusted.
    NumericalTrouble,
    /// The model was proved infeasible — with the always-feasible warm
    /// start present this indicates a model-construction bug.
    Infeasible,
    /// A panic was caught while this rung was computing its candidate.
    Panic,
    /// The candidate failed structural verification
    /// ([`regalloc_ir::verify_allocated`]).
    ValidationFailed,
    /// The candidate failed the interpreter-equivalence check
    /// ([`crate::check::equivalent`]).
    EquivalenceFailed,
    /// The candidate failed the static dataflow translation validator
    /// ([`regalloc_lint::validate`]).
    StaticValidationFailed,
    /// The shared per-function deadline expired before this rung ran.
    DeadlineExceeded,
    /// The rung has no implementation in this pipeline (no baseline
    /// allocator was injected).
    RungUnavailable,
    /// The rung reported a structured error of its own (e.g.
    /// [`fallback::FallbackError`]).
    RungFailed,
    /// The solver's optimality proof failed the exact-rational audit (or
    /// was missing while auditing was required); the solution itself may
    /// still be accepted, one rung lower, without the proof.
    CertificateRejected,
}

impl ReasonCode {
    /// All reason codes, in declaration order.
    pub const ALL: [ReasonCode; 12] = [
        ReasonCode::SolverTimeout,
        ReasonCode::SolverLimit,
        ReasonCode::NumericalTrouble,
        ReasonCode::Infeasible,
        ReasonCode::Panic,
        ReasonCode::ValidationFailed,
        ReasonCode::EquivalenceFailed,
        ReasonCode::StaticValidationFailed,
        ReasonCode::DeadlineExceeded,
        ReasonCode::RungUnavailable,
        ReasonCode::RungFailed,
        ReasonCode::CertificateRejected,
    ];

    /// Inverse of [`ReasonCode::name`] (metrics-label and cache parsing).
    pub fn from_name(name: &str) -> Option<ReasonCode> {
        ReasonCode::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Short stable name (used by the report tables).
    pub fn name(self) -> &'static str {
        match self {
            ReasonCode::SolverTimeout => "solver-timeout",
            ReasonCode::SolverLimit => "solver-limit",
            ReasonCode::NumericalTrouble => "numerical-trouble",
            ReasonCode::Infeasible => "infeasible",
            ReasonCode::Panic => "panic",
            ReasonCode::ValidationFailed => "validation-failed",
            ReasonCode::EquivalenceFailed => "equivalence-failed",
            ReasonCode::StaticValidationFailed => "static-validation-failed",
            ReasonCode::DeadlineExceeded => "deadline-exceeded",
            ReasonCode::RungUnavailable => "rung-unavailable",
            ReasonCode::RungFailed => "rung-failed",
            ReasonCode::CertificateRejected => "certificate-rejected",
        }
    }
}

impl std::fmt::Display for ReasonCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which cross-function seed incumbent actually seeded the IP solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum WarmStartKind {
    /// The solve was seeded only by its own spill-everything bound (or
    /// ran cold).
    #[default]
    None,
    /// A cached solution of the *identical* function body seeded the
    /// solve (same fingerprint, different name or a re-run).
    Exact,
    /// A cached solution of a *similar* function was projected onto this
    /// model, survived feasibility, and seeded the solve.
    Projected,
}

impl WarmStartKind {
    /// All kinds, in declaration order.
    pub const ALL: [WarmStartKind; 3] = [
        WarmStartKind::None,
        WarmStartKind::Exact,
        WarmStartKind::Projected,
    ];

    /// Short stable name (used by the report tables).
    pub fn name(self) -> &'static str {
        match self {
            WarmStartKind::None => "none",
            WarmStartKind::Exact => "exact",
            WarmStartKind::Projected => "projected",
        }
    }

    /// Inverse of [`WarmStartKind::name`] (cache and wire parsing).
    pub fn from_name(name: &str) -> Option<WarmStartKind> {
        WarmStartKind::ALL.into_iter().find(|w| w.name() == name)
    }
}

impl std::fmt::Display for WarmStartKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A donor solution injected into the pipeline: the lifted symbolic
/// decisions of a previously solved (cached) function, to be projected
/// onto the current function's model and offered to the solver as an
/// extra incumbent.
#[derive(Clone, Debug)]
pub struct DonorSolution {
    /// True when the donor's function body is byte-identical to the
    /// current one (same fingerprint) — the projection then maps every
    /// event exactly.
    pub exact: bool,
    /// The donor's allocation in stable IR coordinates.
    pub solution: SymbolicSolution,
}

/// One demotion step: the rung given up on, why, and a human-readable
/// detail (panic message, validation divergence, solver status).
#[derive(Clone, Debug)]
pub struct Demotion {
    /// The rung that failed or was skipped.
    pub from: Rung,
    /// The structured reason.
    pub reason: ReasonCode,
    /// Free-form diagnostic detail.
    pub detail: String,
}

/// Deterministic fault injection for exercising the ladder.
///
/// Faults are injected at the pipeline layer (not inside the solver), so
/// a plan perturbs exactly the failure edges the ladder is supposed to
/// survive. The default plan is clean.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// Give the IP solver a zero wall-clock budget, forcing the timeout
    /// path regardless of the configured limit.
    pub force_timeout: bool,
    /// Panic at the start of analysis/model building (takes the IP and
    /// warm-start rungs down together, as a real builder bug would).
    pub panic_in_build: bool,
    /// Panic inside the rewrite of every solver-derived candidate.
    pub panic_in_rewrite: bool,
    /// Flip decision-variable bits of the IP solution before rewrite,
    /// seeded for determinism — the validators must catch the damage.
    pub corrupt_solution: Option<u64>,
}

impl FaultPlan {
    /// The clean plan: no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A pseudo-random plan derived from `seed` (used by the fuzzing
    /// tests to cover fault combinations).
    pub fn seeded(seed: u64) -> FaultPlan {
        let h = regalloc_ir::interp::mix64(seed);
        FaultPlan {
            force_timeout: h & 1 != 0,
            panic_in_build: h & 2 != 0,
            panic_in_rewrite: h & 4 != 0,
            corrupt_solution: (h & 8 != 0).then(|| regalloc_ir::interp::mix64(h | 1)),
        }
    }

    /// True when no fault is armed.
    pub fn is_clean(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// Outcome of auditing the solver's proof certificate for one function.
#[derive(Clone, Debug)]
pub struct AuditSummary {
    /// The auditor's conclusion.
    pub verdict: regalloc_audit::Verdict,
    /// Leaves of the proof tree whose claim was checked.
    pub leaves: u64,
    /// Slug of the first audit finding (`None` when verified).
    pub code: Option<&'static str>,
    /// Full audit findings, for SARIF/JSON reporting.
    pub diagnostics: Vec<regalloc_lint::Diagnostic>,
}

/// Per-function report: which rung produced the emitted code, every
/// demotion along the way, timings and solver health.
#[derive(Clone, Debug)]
pub struct AllocReport {
    /// Function name.
    pub name: String,
    /// The rung whose (validated) output was accepted.
    pub rung: Rung,
    /// Demotions taken before acceptance, in ladder order.
    pub demotions: Vec<Demotion>,
    /// Time spent in analysis + model building.
    pub build_time: Duration,
    /// Time spent in the IP solver.
    pub solve_time: Duration,
    /// Time spent validating candidates (structural verification plus
    /// interpreter-equivalence runs) across every rung attempted.
    pub validate_time: Duration,
    /// Numerical-health counters accumulated by the solver.
    pub health: SolverHealth,
    /// Branch-and-bound nodes used.
    pub solver_nodes: u64,
    /// Total simplex iterations across every LP relaxation of the solve
    /// (including pruned and abandoned nodes).
    pub lp_iters: u64,
    /// Constraints in the integer program (0 if the model never built).
    pub num_constraints: usize,
    /// Decision variables in the integer program (0 if never built).
    pub num_vars: usize,
    /// Intermediate instructions analysed.
    pub num_insts: usize,
    /// Which injected donor incumbent (if any) seeded the IP solve.
    pub warm_start: WarmStartKind,
    /// Certificate-audit outcome, when auditing was enabled and the
    /// solver claimed a proved status.
    pub audit: Option<AuditSummary>,
}

impl AllocReport {
    /// Table 2 "solved": the IP solver's own answer was accepted.
    pub fn solved(&self) -> bool {
        matches!(self.rung, Rung::IpOptimal | Rung::IpIncumbent)
    }

    /// Table 2 "optimal": the accepted answer carries an optimality proof.
    pub fn solved_optimally(&self) -> bool {
        self.rung == Rung::IpOptimal
    }

    /// True if any demotion was taken.
    pub fn degraded(&self) -> bool {
        !self.demotions.is_empty()
    }
}

/// The result of a robust allocation: runnable, validated code plus the
/// report describing how it was obtained.
#[derive(Clone, Debug)]
pub struct RobustOutcome {
    /// The rewritten function (validated: structural + equivalence).
    pub func: Function,
    /// Spill accounting for the accepted rung.
    pub stats: SpillStats,
    /// How the ladder got here.
    pub report: AllocReport,
    /// The accepted decision vector lifted into stable IR coordinates
    /// (model-derived rungs only: IP and warm-start). `None` for the
    /// coloring and spill-all rungs, which never touch the model.
    pub symbolic: Option<SymbolicSolution>,
    /// The audit-verified proof certificate, present only when auditing
    /// was on, the accepted rung is [`Rung::IpOptimal`] and the audit
    /// verified it (the driver cache persists it for hit-time re-audit).
    pub certificate: Option<regalloc_ilp::Certificate>,
}

/// The injected graph-coloring rung.
///
/// `regalloc-coloring` depends on this crate, so the pipeline cannot name
/// `ColoringAllocator` directly; the baseline is injected through this
/// object-safe trait instead (implemented by `ColoringAllocator`).
pub trait BaselineAllocator {
    /// Produce a complete allocation of `f`, or a description of why the
    /// baseline could not.
    fn allocate_baseline(
        &self,
        f: &Function,
        profile: &Profile,
    ) -> Result<(Function, SpillStats), String>;
}

/// The fault-tolerant allocator: [`crate::IpAllocator`]'s pipeline wrapped
/// in the validated degradation ladder described in the module docs.
///
/// Interpreter-equivalence validation runs on the register file the
/// machine model itself supplies ([`Machine::new_regfile`]), so the
/// allocator is target-generic — `M` may be a concrete model or
/// `dyn Machine`.
pub struct RobustAllocator<'m, M: ?Sized> {
    machine: &'m M,
    cost: CostModel,
    solver: SolverConfig,
    budget: Duration,
    equiv_runs: usize,
    equiv_seed: u64,
    static_validation: bool,
    audit: bool,
    faults: FaultPlan,
    baseline: Option<&'m dyn BaselineAllocator>,
    donor: Option<DonorSolution>,
}

/// Stringify a caught panic payload.
fn panic_msg(e: Box<dyn Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<'m, M: Machine + ?Sized> RobustAllocator<'m, M> {
    /// A robust allocator with the paper's cost weights, the default
    /// solver budget, a 30-second per-function wall-clock deadline across
    /// all rungs, and 4 equivalence runs per candidate.
    pub fn new(machine: &'m M) -> RobustAllocator<'m, M> {
        RobustAllocator {
            machine,
            cost: CostModel::paper(),
            solver: SolverConfig::default(),
            budget: Duration::from_secs(30),
            equiv_runs: 4,
            equiv_seed: 0x0b5e55ed,
            static_validation: true,
            audit: false,
            faults: FaultPlan::none(),
            baseline: None,
            donor: None,
        }
    }

    /// Replace the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the IP solver configuration.
    pub fn with_solver_config(mut self, solver: SolverConfig) -> Self {
        self.solver = solver;
        self
    }

    /// Replace the shared per-function wall-clock budget. The solver gets
    /// at most `min(budget, solver.time_limit)`; lower rungs run even
    /// after expiry (code must still be emitted) but intermediate rungs
    /// are skipped with [`ReasonCode::DeadlineExceeded`].
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Configure the equivalence validator (`runs` random argument
    /// vectors from `seed`). `runs = 0` disables interpreter validation
    /// (structural verification still runs).
    pub fn with_equivalence(mut self, runs: usize, seed: u64) -> Self {
        self.equiv_runs = runs;
        self.equiv_seed = seed;
        self
    }

    /// Enable or disable the static dataflow translation validator
    /// ([`regalloc_lint::validate`]) in candidate acceptance. On by
    /// default; disabling leaves only structural verification and the
    /// (sampled) interpreter-equivalence check.
    pub fn with_static_validation(mut self, on: bool) -> Self {
        self.static_validation = on;
        self
    }

    /// Enable certificate auditing: the solver is asked to emit proof
    /// certificates and every optimality claim must survive the exact
    /// rational audit ([`regalloc_audit::audit_solution`]) before the
    /// [`Rung::IpOptimal`] rung is accepted. A rejected or missing
    /// certificate demotes the claim to [`Rung::IpIncumbent`] with
    /// [`ReasonCode::CertificateRejected`] — the allocation itself is
    /// still used (it passes the same validation as any candidate), only
    /// the optimality proof is withdrawn. Off by default.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Arm a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Inject the graph-coloring rung.
    pub fn with_baseline(mut self, baseline: &'m dyn BaselineAllocator) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Inject a donor solution (the lifted allocation of an identical or
    /// similar cached function). Its projection onto this function's
    /// model, when feasible, is offered to the solver as an extra
    /// incumbent; an infeasible projection is dropped silently, so a bad
    /// donor can only fail to speed the solve up, never change its
    /// result's correctness.
    pub fn with_donor(mut self, donor: Option<DonorSolution>) -> Self {
        self.donor = donor;
        self
    }

    /// The machine model in use.
    pub fn machine(&self) -> &M {
        self.machine
    }

    /// Validate a candidate: structural verification, then interpreter
    /// equivalence against the original function.
    fn validate(
        &self,
        orig: &Function,
        cand: &Function,
        tracer: &Tracer,
    ) -> Result<(), (ReasonCode, String)> {
        {
            let _s = tracer.span(Phase::Verify);
            if let Err(errs) = verify_allocated(cand) {
                return Err((
                    ReasonCode::ValidationFailed,
                    format!(
                        "{} structural errors, first: {:?}",
                        errs.len(),
                        errs.first()
                    ),
                ));
            }
        }
        if self.static_validation {
            let _s = tracer.span(Phase::StaticValidate);
            let errs = regalloc_lint::validate(self.machine, orig, cand);
            if !errs.is_empty() {
                return Err((
                    ReasonCode::StaticValidationFailed,
                    format!("{} static errors, first: {}", errs.len(), errs[0]),
                ));
            }
        }
        if self.equiv_runs > 0 {
            let _s = tracer.span(Phase::InterpCheck);
            check::equivalent_with(orig, cand, self.equiv_runs, self.equiv_seed, || {
                self.machine.new_regfile()
            })
            .map_err(|e| (ReasonCode::EquivalenceFailed, e))?;
        }
        Ok(())
    }

    /// Allocate registers for `f` through the degradation ladder.
    ///
    /// # Errors
    ///
    /// * [`AllocError::WidthRefused`] — the function is not attempted on
    ///   this machine, as in Table 2 of the paper.
    /// * [`AllocError::LadderExhausted`] — every rung, including the
    ///   spill-everything fallback, failed to produce a validated
    ///   allocation. Unreachable on the provided machine models unless a
    ///   fault plan sabotages the fallback itself.
    pub fn allocate(&self, f: &Function) -> Result<RobustOutcome, AllocError> {
        self.allocate_traced(f, &Tracer::off())
    }

    /// [`RobustAllocator::allocate`] with a trace recorder: phase spans
    /// (build → solve → rewrite → verify → static-validate →
    /// interp-check), model/demotion/acceptance events and the solver's
    /// own search events land on `tracer`. A disabled tracer costs one
    /// branch per hook.
    ///
    /// # Errors
    ///
    /// See [`RobustAllocator::allocate`].
    pub fn allocate_traced(
        &self,
        f: &Function,
        tracer: &Tracer,
    ) -> Result<RobustOutcome, AllocError> {
        if refuses(self.machine, f) {
            return Err(AllocError::WidthRefused);
        }
        let cfg = Cfg::new(f);
        let loops = LoopInfo::new(f, &cfg);
        let profile = Profile::estimate(f, &cfg, &loops);
        self.allocate_with_profile_traced(f, &cfg, &profile, tracer)
    }

    /// Allocate with an externally supplied profile.
    ///
    /// # Errors
    ///
    /// See [`RobustAllocator::allocate`].
    pub fn allocate_with_profile(
        &self,
        f: &Function,
        cfg: &Cfg,
        profile: &Profile,
    ) -> Result<RobustOutcome, AllocError> {
        self.allocate_with_profile_traced(f, cfg, profile, &Tracer::off())
    }

    /// [`RobustAllocator::allocate_with_profile`] with a trace recorder
    /// (see [`RobustAllocator::allocate_traced`]).
    ///
    /// # Errors
    ///
    /// See [`RobustAllocator::allocate`].
    pub fn allocate_with_profile_traced(
        &self,
        f: &Function,
        cfg: &Cfg,
        profile: &Profile,
        tracer: &Tracer,
    ) -> Result<RobustOutcome, AllocError> {
        if refuses(self.machine, f) {
            return Err(AllocError::WidthRefused);
        }
        let deadline = Deadline::after(self.budget);
        let mut demotions: Vec<Demotion> = Vec::new();
        let mut health = SolverHealth::default();
        let mut solve_time = Duration::ZERO;
        let mut validate_time = Duration::ZERO;
        let mut solver_nodes = 0u64;
        let mut lp_iters = 0u64;
        let mut num_constraints = 0usize;
        let mut num_vars = 0usize;
        let mut warm_kind = WarmStartKind::None;
        let mut audit_summary: Option<AuditSummary> = None;
        let mut certificate: Option<regalloc_ilp::Certificate> = None;

        // ---- Stage 1: analysis + model build (guarded). -------------------
        // A panic here takes the IP and warm-start rungs down together:
        // all three need the built model.
        let faults = self.faults;
        let t0 = Instant::now();
        let built_parts = {
            let _s = tracer.span(Phase::Build);
            catch_unwind(AssertUnwindSafe(|| {
                assert!(!faults.panic_in_build, "fault injection: panic_in_build");
                let live = Liveness::new(f, cfg);
                let analysis = analysis::analyze(f, cfg, &live, self.machine);
                let built =
                    build::build_model(f, cfg, profile, &analysis, self.machine, &self.cost);
                let warm = warm::spill_everything_assignment(f, &analysis, &built, self.machine);
                (analysis, built, warm)
            }))
        };
        let build_time = t0.elapsed();

        macro_rules! finish {
            ($rung:expr, $func:expr, $stats:expr, $symbolic:expr) => {{
                let rung: Rung = $rung;
                tracer.event(|| Event::Accepted {
                    rung: rung.name(),
                    warm_start: warm_kind.name(),
                });
                return Ok(RobustOutcome {
                    func: $func,
                    stats: $stats,
                    report: AllocReport {
                        name: f.name().to_string(),
                        rung,
                        demotions,
                        build_time,
                        solve_time,
                        validate_time,
                        health,
                        solver_nodes,
                        lp_iters,
                        num_constraints,
                        num_vars,
                        num_insts: f.num_insts(),
                        warm_start: warm_kind,
                        audit: audit_summary.take(),
                    },
                    symbolic: $symbolic,
                    certificate: if rung == Rung::IpOptimal {
                        certificate.take()
                    } else {
                        None
                    },
                });
            }};
        }

        // Record a demotion and mirror it as a trace event.
        macro_rules! demote {
            ($rung:expr, $reason:expr, $detail:expr) => {{
                let rung: Rung = $rung;
                let reason: ReasonCode = $reason;
                tracer.event(|| Event::Demoted {
                    rung: rung.name(),
                    reason: reason.name(),
                });
                demotions.push(Demotion {
                    from: rung,
                    reason,
                    detail: $detail,
                });
            }};
        }

        let model_rungs = match built_parts {
            Ok(parts) => Some(parts),
            Err(e) => {
                let msg = panic_msg(e);
                for rung in [Rung::IpOptimal, Rung::IpIncumbent, Rung::WarmStart] {
                    demote!(
                        rung,
                        ReasonCode::Panic,
                        format!("model build panicked: {msg}")
                    );
                }
                None
            }
        };

        // ---- Stage 2: solve + rewrite the solver-derived rungs. -----------
        if let Some((analysis, built, warm_values)) = model_rungs {
            num_constraints = built.model.num_rows();
            num_vars = built.model.num_vars();
            tracer.event(|| Event::ModelBuilt {
                insts: f.num_insts() as u64,
                vars: num_vars as u64,
                constraints: num_constraints as u64,
            });

            let solve_deadline = if faults.force_timeout {
                Deadline::after(Duration::ZERO)
            } else {
                deadline
            };
            // Assemble the seed incumbents: the spill-everything bound
            // plus, when a donor was injected, its projection onto this
            // model. An infeasible projection is dropped silently — a
            // donor can only speed the solve up, never corrupt it.
            let mut seeds: Vec<Incumbent> = Vec::new();
            if let Some(w) = &warm_values {
                seeds.push(Incumbent {
                    source: "spill",
                    values: w.clone(),
                });
            }
            if let Some(donor) = &self.donor {
                let base: &[bool] = warm_values.as_deref().unwrap_or(&[]);
                // Same containment as the solver itself: a donor is
                // foreign data, and a panic while mapping it must cost
                // the seed, never the function.
                let proj = catch_unwind(AssertUnwindSafe(|| {
                    let proj = built.project(&donor.solution, base);
                    built.model.is_feasible(&proj).then_some(proj)
                }));
                let source = if donor.exact { "exact" } else { "projected" };
                if let Ok(Some(proj)) = proj {
                    seeds.push(Incumbent {
                        source,
                        values: proj,
                    });
                } else {
                    tracer.event(|| Event::SeedRejected {
                        source,
                        reason: "infeasible-projection",
                    });
                }
            }
            // Auditing needs the solver's proof; emission is pure
            // observation (same pivots, same events, same solution), so
            // flipping it on cannot change the allocation.
            let solver_cfg = SolverConfig {
                emit_certificates: self.audit,
                ..self.solver.clone()
            };
            let sol = catch_unwind(AssertUnwindSafe(|| {
                solve_seeded_traced(&built.model, &solver_cfg, &seeds, solve_deadline, tracer)
            }));

            // Each solver-derived rung is a (rung, values) candidate; the
            // first whose rewrite + validation succeeds wins.
            let mut candidates: Vec<(Rung, Vec<bool>)> = Vec::new();
            match sol {
                Ok(sol) => {
                    solve_time = sol.solve_time;
                    solver_nodes = sol.nodes;
                    lp_iters = sol.lp_iters;
                    health.merge(&sol.health);
                    warm_kind = match sol.incumbent_source {
                        Some("exact") => WarmStartKind::Exact,
                        Some("projected") => WarmStartKind::Projected,
                        _ => WarmStartKind::None,
                    };
                    let (ip_reason, ip_detail) = match sol.status {
                        Status::Optimal if self.audit => {
                            let outcome = {
                                let _s = tracer.span(Phase::Audit);
                                regalloc_audit::audit_solution(&built.model, &sol)
                            };
                            let leaves = outcome.leaves_checked;
                            match outcome.verdict {
                                regalloc_audit::Verdict::Verified => {
                                    tracer.event(|| Event::CertificateChecked { leaves });
                                    audit_summary = Some(AuditSummary {
                                        verdict: outcome.verdict,
                                        leaves,
                                        code: None,
                                        diagnostics: Vec::new(),
                                    });
                                    certificate = sol.certificate.clone();
                                    candidates.push((Rung::IpOptimal, sol.values.clone()));
                                    (None, String::new())
                                }
                                _ => {
                                    let code = outcome.primary_code().unwrap_or("unknown");
                                    tracer.event(|| Event::CertificateRejected { code });
                                    audit_summary = Some(AuditSummary {
                                        verdict: outcome.verdict,
                                        leaves,
                                        code: Some(code),
                                        diagnostics: outcome.diagnostics,
                                    });
                                    // The assignment is still a checked,
                                    // validated allocation — only the
                                    // optimality proof is withdrawn.
                                    candidates.push((Rung::IpIncumbent, sol.values.clone()));
                                    (
                                        Some(ReasonCode::CertificateRejected),
                                        format!("certificate audit failed: {code}"),
                                    )
                                }
                            }
                        }
                        Status::Optimal => {
                            candidates.push((Rung::IpOptimal, sol.values.clone()));
                            (None, String::new())
                        }
                        Status::Feasible if !sol.warm_start_only => {
                            candidates.push((Rung::IpIncumbent, sol.values.clone()));
                            (
                                Some(ReasonCode::SolverTimeout),
                                "no optimality proof within budget".to_string(),
                            )
                        }
                        // A donor incumbent the search could not beat is
                        // still an IP-derived allocation — it was solved
                        // to (or near) optimality for its donor and is
                        // feasible on this model. A better seed must
                        // never produce a worse rung, so only the
                        // spill-everything seed demotes.
                        Status::Feasible if sol.incumbent_source != Some("spill") => {
                            candidates.push((Rung::IpIncumbent, sol.values.clone()));
                            (
                                Some(ReasonCode::SolverTimeout),
                                "best known is the seeded donor incumbent".to_string(),
                            )
                        }
                        Status::Feasible => (
                            Some(ReasonCode::SolverTimeout),
                            "solver returned only the seeded warm start".to_string(),
                        ),
                        Status::NumericalTrouble => (
                            Some(ReasonCode::NumericalTrouble),
                            format!("solver health: {:?}", sol.health),
                        ),
                        Status::Infeasible => (
                            Some(ReasonCode::Infeasible),
                            "model proved infeasible".to_string(),
                        ),
                        Status::Unknown => (
                            Some(ReasonCode::SolverLimit),
                            "solver stopped with nothing usable".to_string(),
                        ),
                    };
                    if let Some(reason) = ip_reason {
                        let until = if candidates.is_empty() {
                            // Neither IP rung has a candidate.
                            vec![Rung::IpOptimal, Rung::IpIncumbent]
                        } else {
                            vec![Rung::IpOptimal]
                        };
                        for rung in until {
                            demote!(rung, reason, ip_detail.clone());
                        }
                    }
                }
                Err(e) => {
                    let msg = panic_msg(e);
                    for rung in [Rung::IpOptimal, Rung::IpIncumbent] {
                        demote!(rung, ReasonCode::Panic, format!("solver panicked: {msg}"));
                    }
                }
            }
            match warm_values {
                Some(w) => candidates.push((Rung::WarmStart, w)),
                // Satellite of the machine model: no admissible scratch
                // or definition register somewhere — skip the rung
                // instead of panicking.
                None => demote!(
                    Rung::WarmStart,
                    ReasonCode::RungFailed,
                    "no admissible spill-everything warm start".to_string()
                ),
            }

            for (rung, mut values) in candidates {
                if deadline.expired() && rung != Rung::WarmStart {
                    demote!(
                        rung,
                        ReasonCode::DeadlineExceeded,
                        "per-function budget expired".to_string()
                    );
                    continue;
                }
                // Bit-flip fault: damage solver-produced vectors only; the
                // validators below must catch it.
                if let (Some(seed), true) = (faults.corrupt_solution, rung != Rung::WarmStart) {
                    if !values.is_empty() {
                        for k in 0..8 {
                            let i = regalloc_ir::interp::mix64(seed ^ k) as usize % values.len();
                            values[i] = !values[i];
                        }
                    }
                }
                let cand = {
                    let _s = tracer.span(Phase::Rewrite);
                    catch_unwind(AssertUnwindSafe(|| {
                        assert!(
                            !faults.panic_in_rewrite,
                            "fault injection: panic_in_rewrite"
                        );
                        rewrite::apply(f, profile, &analysis, &built, &values, self.machine)
                    }))
                };
                let (func, stats) = match cand {
                    Ok(pair) => pair,
                    Err(e) => {
                        demote!(
                            rung,
                            ReasonCode::Panic,
                            format!("rewrite panicked: {}", panic_msg(e))
                        );
                        continue;
                    }
                };
                let tv = Instant::now();
                let valid = self.validate(f, &func, tracer);
                validate_time += tv.elapsed();
                match valid {
                    Ok(()) => finish!(rung, func, stats, Some(built.lift(&values))),
                    Err((reason, detail)) => {
                        demote!(rung, reason, detail);
                    }
                }
            }
        }

        // ---- Stage 3: the graph-coloring baseline (guarded). --------------
        match self.baseline {
            None => demote!(
                Rung::Coloring,
                ReasonCode::RungUnavailable,
                "no baseline allocator injected".to_string()
            ),
            Some(_) if deadline.expired() => demote!(
                Rung::Coloring,
                ReasonCode::DeadlineExceeded,
                "per-function budget expired".to_string()
            ),
            Some(baseline) => {
                let cand = {
                    let _s = tracer.span(Phase::Baseline);
                    catch_unwind(AssertUnwindSafe(|| baseline.allocate_baseline(f, profile)))
                };
                match cand {
                    Ok(Ok((func, stats))) => {
                        let tv = Instant::now();
                        let valid = self.validate(f, &func, tracer);
                        validate_time += tv.elapsed();
                        match valid {
                            Ok(()) => finish!(Rung::Coloring, func, stats, None),
                            Err((reason, detail)) => demote!(Rung::Coloring, reason, detail),
                        }
                    }
                    Ok(Err(msg)) => demote!(Rung::Coloring, ReasonCode::RungFailed, msg),
                    Err(e) => demote!(
                        Rung::Coloring,
                        ReasonCode::Panic,
                        format!("baseline panicked: {}", panic_msg(e))
                    ),
                }
            }
        }

        // ---- Stage 4: spill everything — the rung of last resort. ---------
        // Runs even past the deadline: code must still be emitted.
        let cand = {
            let _s = tracer.span(Phase::Fallback);
            catch_unwind(AssertUnwindSafe(|| {
                fallback::spill_everything(f, profile, self.machine)
            }))
        };
        match cand {
            Ok(Ok((func, stats))) => {
                let tv = Instant::now();
                let valid = self.validate(f, &func, tracer);
                validate_time += tv.elapsed();
                match valid {
                    Ok(()) => finish!(Rung::SpillAll, func, stats, None),
                    Err((reason, detail)) => {
                        demote!(Rung::SpillAll, reason, detail);
                        Err(AllocError::LadderExhausted)
                    }
                }
            }
            Ok(Err(e)) => {
                demote!(Rung::SpillAll, ReasonCode::RungFailed, e.to_string());
                Err(AllocError::LadderExhausted)
            }
            Err(e) => {
                demote!(
                    Rung::SpillAll,
                    ReasonCode::Panic,
                    format!("fallback panicked: {}", panic_msg(e))
                );
                Err(AllocError::LadderExhausted)
            }
        }
    }
}
