//! The ORA analysis module (§2): finds every point where a register-
//! allocation decision must be made.
//!
//! For each symbolic register the analysis produces a chain of *events* —
//! definitions, uses (with their syntactic roles), call crossings and
//! block entries — connected by *segments*, the maximal intervals over
//! which an allocation cannot usefully change. The model builder creates
//! decision variables per (segment × candidate register) and per event
//! action, so segments are exactly the granularity of the paper's
//! symbolic-register networks.
//!
//! The analysis also classifies symbolic registers:
//!
//! * *rematerialisable* — single definition by a constant load, eligible
//!   for rematerialisation instead of reload;
//! * *predefined memory* (§5.5) — single definition by a load of a
//!   non-aliased parameter slot that is accessed nowhere else, eligible
//!   for home-location coalescing (the defining load is deleted, the
//!   symbolic starts life in memory, and its spill slot is the
//!   parameter's home location).

use std::collections::HashMap;

use regalloc_ir::{BlockId, Cfg, Function, GlobalId, Inst, Liveness, Loc, SymId, UseRole, Width};
use regalloc_x86::Machine;

/// A segment identifier: one maximal interval of one symbolic register's
/// live range over which allocation is constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SegId(pub u32);

impl SegId {
    /// Index into dense per-segment arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One register-allocation event of one symbolic register.
#[derive(Clone, Debug)]
pub struct Event {
    /// The symbolic register.
    pub sym: SymId,
    /// Containing block.
    pub block: BlockId,
    /// Instruction index within the block (`None` for block-entry events).
    pub inst: Option<usize>,
    /// Use roles of `sym` at this instruction (may be several).
    pub roles: Vec<UseRole>,
    /// True if the instruction defines `sym`.
    pub defines: bool,
    /// True if the instruction is a call (caller-saved registers die
    /// across it).
    pub call: bool,
    /// True for the deleted definition of a predefined memory symbolic
    /// (§5.5): no register definition happens; the value simply exists in
    /// its home memory location.
    pub predef_def: bool,
    /// Incoming segment (`None` at a chain start).
    pub gin: Option<SegId>,
    /// Outgoing segment (`None` when the value is dead afterwards).
    pub gout: Option<SegId>,
}

/// Events at one program point, plus the symbolics that are live across
/// the point without an event (needed by the single-symbolic occupancy
/// constraints of §5.3).
#[derive(Clone, Debug, Default)]
pub struct EventGroup {
    /// Instruction index (`None` for the block-entry group).
    pub inst: Option<usize>,
    /// Indices into [`Analysis::events`].
    pub events: Vec<usize>,
    /// `(sym, segment)` for live symbolics with no event here.
    pub through: Vec<(SymId, SegId)>,
}

/// Output of the analysis module.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// All events.
    pub events: Vec<Event>,
    /// Event groups per block, in program order (entry group first when
    /// present).
    pub block_groups: Vec<Vec<EventGroup>>,
    /// Segment live at each block's exit, per symbolic.
    pub exit_seg: HashMap<(BlockId, SymId), SegId>,
    /// Owning symbolic of each segment.
    pub seg_sym: Vec<SymId>,
    /// Rematerialisation value per symbolic (`Some(imm)` when the single
    /// definition is `LoadImm imm`).
    pub remat: Vec<Option<i64>>,
    /// §5.5 home-coalescing target per symbolic.
    pub predefined: Vec<Option<GlobalId>>,
}

impl Analysis {
    /// Total number of segments.
    pub fn num_segments(&self) -> usize {
        self.seg_sym.len()
    }
}

/// Classify symbolics: definition counts, rematerialisable constants,
/// predefined-memory candidates.
fn classify<M: Machine + ?Sized>(
    f: &Function,
    _machine: &M,
) -> (Vec<Option<i64>>, Vec<Option<GlobalId>>) {
    let ns = f.num_syms();
    let mut def_count = vec![0u32; ns];
    let mut def_inst: Vec<Option<Inst>> = vec![None; ns];
    let mut global_access = vec![0u32; f.globals().len()];
    for (_, _, inst) in f.insts() {
        if let Some(s) = inst.sym_def() {
            def_count[s.index()] += 1;
            def_inst[s.index()] = Some(inst.clone());
        }
        match inst {
            Inst::Load {
                addr: regalloc_ir::Address::Global(g),
                ..
            }
            | Inst::Store {
                addr: regalloc_ir::Address::Global(g),
                ..
            } => global_access[*g as usize] += 1,
            _ => {}
        }
    }

    let mut remat = vec![None; ns];
    let mut predefined = vec![None; ns];
    for s in f.sym_ids() {
        if def_count[s.index()] != 1 {
            continue;
        }
        match &def_inst[s.index()] {
            Some(Inst::LoadImm { imm, .. }) => remat[s.index()] = Some(*imm),
            Some(Inst::Load {
                addr: regalloc_ir::Address::Global(g),
                ..
            }) => {
                let slot = f.global(*g);
                // §5.5 conditions, conservatively: (1) defined by a load of
                // the value; (2) no interference — guaranteed by requiring
                // the defining load to be the global's only access; (3)
                // not aliased. Restricted to parameter slots because a
                // parameter's home is caller-dead after return, so writing
                // spills into it is invisible; a true global's final value
                // is observable.
                if slot.is_param && !slot.aliased && global_access[*g as usize] == 1 {
                    predefined[s.index()] = Some(*g);
                }
            }
            _ => {}
        }
    }
    (remat, predefined)
}

/// Run the analysis for `f`.
pub fn analyze<M: Machine + ?Sized>(
    f: &Function,
    cfg: &Cfg,
    live: &Liveness,
    machine: &M,
) -> Analysis {
    let (remat, predefined) = classify(f, machine);
    let mut a = Analysis {
        block_groups: vec![Vec::new(); f.num_blocks()],
        remat,
        predefined,
        ..Default::default()
    };

    let new_seg = |a: &mut Analysis, s: SymId| -> SegId {
        let id = SegId(a.seg_sym.len() as u32);
        a.seg_sym.push(s);
        id
    };

    for &b in cfg.rpo() {
        let live_before = live.live_before_insts(f, b);
        let live_out = live.live_out(b);
        let insts = &f.block(b).insts;
        // Current segment per live symbolic.
        let mut cur: HashMap<SymId, SegId> = HashMap::new();
        let mut groups: Vec<EventGroup> = Vec::new();

        // Block-entry events for live-in symbolics.
        let live_in: Vec<SymId> = live.live_in(b).iter().map(|i| SymId(i as u32)).collect();
        if !live_in.is_empty() {
            let mut g = EventGroup {
                inst: None,
                ..Default::default()
            };
            for &s in &live_in {
                let seg = new_seg(&mut a, s);
                cur.insert(s, seg);
                g.events.push(a.events.len());
                a.events.push(Event {
                    sym: s,
                    block: b,
                    inst: None,
                    roles: Vec::new(),
                    defines: false,
                    call: false,
                    predef_def: false,
                    gin: None, // resolved against predecessor exits by the builder
                    gout: Some(seg),
                });
            }
            groups.push(g);
        }

        for (i, inst) in insts.iter().enumerate() {
            // Gather uses by symbolic.
            let mut roles: HashMap<SymId, Vec<UseRole>> = HashMap::new();
            let mut order: Vec<SymId> = Vec::new();
            inst.visit_uses(&mut |l, role| {
                if let Loc::Sym(s) = l {
                    let e = roles.entry(s).or_default();
                    if e.is_empty() {
                        order.push(s);
                    }
                    e.push(role);
                }
            });
            let def = inst.sym_def();
            let is_call = matches!(inst, Inst::Call { .. });

            let live_after: &regalloc_ir::BitSet = if i + 1 < insts.len() {
                &live_before[i + 1]
            } else {
                live_out
            };

            // Symbolics needing an event here: used, defined, or live
            // across a call.
            let mut event_syms: Vec<SymId> = order.clone();
            if let Some(d) = def {
                if !event_syms.contains(&d) {
                    event_syms.push(d);
                }
            }
            if is_call {
                for sidx in live_after.iter() {
                    let s = SymId(sidx as u32);
                    if Some(s) != def && !event_syms.contains(&s) {
                        event_syms.push(s);
                    }
                }
            }
            if event_syms.is_empty() {
                continue;
            }

            let mut g = EventGroup {
                inst: Some(i),
                ..Default::default()
            };
            for &s in &event_syms {
                let defines = def == Some(s);
                let gin = cur.get(&s).copied();
                let lives_on = live_after.contains(s.index());
                let gout = if lives_on {
                    let seg = new_seg(&mut a, s);
                    cur.insert(s, seg);
                    Some(seg)
                } else {
                    cur.remove(&s);
                    None
                };
                let predef_def = defines && a.predefined[s.index()].is_some();
                g.events.push(a.events.len());
                a.events.push(Event {
                    sym: s,
                    block: b,
                    inst: Some(i),
                    roles: roles.get(&s).cloned().unwrap_or_default(),
                    defines,
                    call: is_call,
                    predef_def,
                    gin,
                    gout,
                });
            }
            // Live-through symbolics (no event at this instruction).
            for (&s, &seg) in &cur {
                if !event_syms.contains(&s) {
                    g.through.push((s, seg));
                }
            }
            g.through.sort_by_key(|(s, _)| *s);
            groups.push(g);
        }

        for sidx in live_out.iter() {
            let s = SymId(sidx as u32);
            if let Some(&seg) = cur.get(&s) {
                a.exit_seg.insert((b, s), seg);
            }
        }
        a.block_groups[b.index()] = groups;
    }
    a
}

/// The width class a symbolic register allocates in.
pub fn sym_width(f: &Function, s: SymId) -> Width {
    f.sym_width(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::{BinOp, Cond, FunctionBuilder, Operand};
    use regalloc_x86::X86Machine;

    fn analyze_fn(f: &Function) -> Analysis {
        let cfg = Cfg::new(f);
        let live = Liveness::new(f, &cfg);
        analyze(f, &cfg, &live, &X86Machine::pentium())
    }

    #[test]
    fn straightline_events() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_sym(Width::B32);
        let y = b.new_sym(Width::B32);
        b.load_imm(x, 3);
        b.bin(BinOp::Add, y, Operand::sym(x), Operand::sym(x));
        b.ret(Some(y));
        let f = b.finish();
        let a = analyze_fn(&f);
        // Events: def x, (use x ×2 + def y), use y at ret.
        assert_eq!(a.events.len(), 4);
        let def_x = &a.events[0];
        assert!(def_x.defines && def_x.gin.is_none() && def_x.gout.is_some());
        let use_x = a
            .events
            .iter()
            .find(|e| e.sym == x && !e.defines && !e.roles.is_empty())
            .unwrap();
        assert_eq!(use_x.roles.len(), 2, "both operand positions recorded");
        assert!(use_x.gout.is_none(), "x dies at the add");
        let use_y = a.events.iter().find(|e| e.sym == y && !e.defines).unwrap();
        assert_eq!(use_y.roles, vec![UseRole::RetVal]);
    }

    #[test]
    fn remat_classification() {
        let mut b = FunctionBuilder::new("f");
        let k = b.new_sym(Width::B32);
        let v = b.new_sym(Width::B32);
        b.load_imm(k, 7);
        b.bin(BinOp::Add, v, Operand::sym(k), Operand::Imm(1));
        b.bin(BinOp::Add, k, Operand::sym(v), Operand::sym(k)); // redefines k
        b.ret(Some(k));
        let f = b.finish();
        let a = analyze_fn(&f);
        assert_eq!(a.remat[k.index()], None, "redefined: not rematerialisable");
        assert_eq!(a.remat[v.index()], None, "not constant-defined");
        // A single-def constant is rematerialisable.
        let mut b2 = FunctionBuilder::new("g");
        let c = b2.new_sym(Width::B32);
        b2.load_imm(c, 42);
        b2.ret(Some(c));
        let a2 = analyze_fn(&b2.finish());
        assert_eq!(a2.remat[c.index()], Some(42));
    }

    #[test]
    fn predefined_memory_classification() {
        let mut b = FunctionBuilder::new("f");
        let p = b.new_param("p", Width::B32);
        let q = b.new_param("q", Width::B32);
        let g = b.new_global("G", Width::B32, 0);
        let a1 = b.new_sym(Width::B32);
        let a2 = b.new_sym(Width::B32);
        let a3 = b.new_sym(Width::B32);
        let t = b.new_sym(Width::B32);
        b.load_global(a1, p); // unique access to param p: candidate
        b.load_global(a2, q);
        b.load_global(t, q); // second access to q: not a candidate
        b.load_global(a3, g); // non-param global: not a candidate
        b.bin(BinOp::Add, t, Operand::sym(a1), Operand::sym(a2));
        b.bin(BinOp::Add, t, Operand::sym(t), Operand::sym(a3));
        b.ret(Some(t));
        let f = b.finish();
        let a = analyze_fn(&f);
        assert_eq!(a.predefined[a1.index()], Some(p));
        assert_eq!(a.predefined[a2.index()], None);
        assert_eq!(a.predefined[a3.index()], None);
    }

    #[test]
    fn aliased_param_not_predefined() {
        let mut b = FunctionBuilder::new("f");
        let p = b.new_param("p", Width::B32);
        b.mark_aliased(p);
        let x = b.new_sym(Width::B32);
        b.load_global(x, p);
        b.ret(Some(x));
        let f = b.finish();
        let a = analyze_fn(&f);
        assert_eq!(a.predefined[x.index()], None, "§5.5 condition 3");
        // The load event is therefore a normal definition.
        assert!(!a.events[0].predef_def);
    }

    #[test]
    fn call_crossing_creates_event() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_sym(Width::B32);
        let r = b.new_sym(Width::B32);
        b.load_imm(x, 5);
        b.call(1, Some(r), vec![]);
        b.bin(BinOp::Add, r, Operand::sym(r), Operand::sym(x));
        b.ret(Some(r));
        let f = b.finish();
        let a = analyze_fn(&f);
        let cross = a
            .events
            .iter()
            .find(|e| e.sym == x && e.call)
            .expect("x live across the call");
        assert!(!cross.defines && cross.roles.is_empty());
        assert!(cross.gin.is_some() && cross.gout.is_some());
        // r is defined by the call, not crossing it.
        let rdef = a.events.iter().find(|e| e.sym == r && e.defines).unwrap();
        assert!(rdef.call);
        assert!(rdef.gin.is_none());
    }

    #[test]
    fn loop_liveness_produces_entry_events_and_exit_segs() {
        let mut b = FunctionBuilder::new("loop");
        let i = b.new_sym(Width::B32);
        let head = b.block();
        let body = b.block();
        let exit = b.block();
        b.load_imm(i, 0);
        b.jump(head);
        b.switch_to(head);
        b.branch(
            Cond::Lt,
            Operand::sym(i),
            Operand::Imm(10),
            Width::B32,
            body,
            exit,
        );
        b.switch_to(body);
        b.bin(BinOp::Add, i, Operand::sym(i), Operand::Imm(1));
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let a = analyze_fn(&f);
        // Entry events in head, body, exit.
        for blk in [head, body, exit] {
            let groups = &a.block_groups[blk.index()];
            assert!(
                groups
                    .first()
                    .is_some_and(|g| g.inst.is_none() && !g.events.is_empty()),
                "block {blk} should start with an entry group"
            );
        }
        // Exit segments exist wherever i is live-out.
        assert!(a.exit_seg.contains_key(&(regalloc_ir::BlockId(0), i)));
        assert!(a.exit_seg.contains_key(&(head, i)));
        assert!(a.exit_seg.contains_key(&(body, i)));
        assert!(!a.exit_seg.contains_key(&(exit, i)));
    }

    #[test]
    fn through_symbolics_recorded() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_sym(Width::B32);
        let y = b.new_sym(Width::B32);
        let z = b.new_sym(Width::B32);
        b.load_imm(x, 1); // x defined
        b.load_imm(y, 2); // x live through this instruction
        b.bin(BinOp::Add, z, Operand::sym(x), Operand::sym(y));
        b.ret(Some(z));
        let f = b.finish();
        let a = analyze_fn(&f);
        let g1 = &a.block_groups[0][1]; // def y group
        assert_eq!(g1.through.len(), 1);
        assert_eq!(g1.through[0].0, x);
    }
}
