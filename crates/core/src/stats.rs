//! Spill-code accounting — the data behind the paper's Table 3.

use std::ops::AddAssign;

/// Dynamic (profile-weighted) spill-code overhead of one allocation.
///
/// Counts are *net*: instructions inserted count positively, instructions
/// deleted (coalesced copies, the original defining loads of predefined
/// memory symbolic registers) count negatively — which is how the paper's
/// Table 3 arrives at negative rematerialisation (GCC) and copy (IP) rows.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpillStats {
    /// Net dynamic spill loads.
    pub loads: i64,
    /// Net dynamic spill stores.
    pub stores: i64,
    /// Net dynamic rematerialisations.
    pub remats: i64,
    /// Net dynamic copies (inserted − deleted).
    pub copies: i64,
    /// Extra dynamic cycles from memory operands (§5.2) — folded accesses
    /// that are not separate instructions and therefore excluded from the
    /// instruction counts above, but part of the cycle overhead.
    pub mem_operand_cycles: i64,
    /// Static code-size change in bytes.
    pub code_bytes: i64,
}

impl SpillStats {
    /// Total net dynamic spill instructions (the paper's Table 3 "total").
    pub fn total_insts(&self) -> i64 {
        self.loads + self.stores + self.remats + self.copies
    }

    /// Total dynamic cycle overhead per eq. (1) with unit spill-code cycle
    /// costs (Table 1: every spill instruction is one cycle) plus memory-
    /// operand extras.
    pub fn overhead_cycles(&self) -> i64 {
        self.total_insts() + self.mem_operand_cycles
    }
}

impl AddAssign for SpillStats {
    fn add_assign(&mut self, o: SpillStats) {
        self.loads += o.loads;
        self.stores += o.stores;
        self.remats += o.remats;
        self.copies += o.copies;
        self.mem_operand_cycles += o.mem_operand_cycles;
        self.code_bytes += o.code_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = SpillStats {
            loads: 10,
            stores: 5,
            remats: 2,
            copies: -3,
            mem_operand_cycles: 4,
            code_bytes: 42,
        };
        assert_eq!(s.total_insts(), 14);
        assert_eq!(s.overhead_cycles(), 18);
    }

    #[test]
    fn accumulation() {
        let mut a = SpillStats::default();
        a += SpillStats {
            loads: 1,
            stores: 2,
            remats: 3,
            copies: -1,
            mem_operand_cycles: 0,
            code_bytes: 7,
        };
        a += SpillStats {
            loads: 1,
            ..Default::default()
        };
        assert_eq!(a.loads, 2);
        assert_eq!(a.total_insts(), 6);
        assert_eq!(a.code_bytes, 7);
    }
}
