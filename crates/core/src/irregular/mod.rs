//! The §5 irregular-architecture extensions to the base ORA model.
//!
//! Each submodule implements one extension family; the model
//! [`build`](crate::build)er drives them:
//!
//! * [`two_address`] — combined source/destination register specifiers
//!   with optimal copy insertion (§5.1),
//! * [`mem_operand`] — separate and combined source/destination memory
//!   specifiers (§5.2),
//! * [`overlap`] — generalised single-symbolic constraints for registers
//!   that share bit fields (§5.3),
//! * [`encoding`] — per-register encoding costs and exclusions (§5.4),
//! * [`predefined`] — predefined memory symbolic registers and
//!   home-location coalescing (§5.5).

pub mod encoding;
pub mod mem_operand;
pub mod overlap;
pub mod predefined;
pub mod two_address;
