//! §5.4 — instruction-encoding irregularities.
//!
//! The x86's encoding makes some register choices cheaper than others:
//!
//! * §5.4.1 — ALU instructions with an immediate operand are one byte
//!   shorter when the register operand is AL/AX/EAX;
//! * §5.4.2 — ESP as an addressing-mode base costs one extra byte, and a
//!   bare `[EBP]` reference costs one extra byte;
//! * §5.4.3 — ESP cannot appear as a *scaled* index register at all.
//!
//! The machine model exposes all three through
//! [`Machine::use_constraints`]: exclusions arrive as a restricted
//! `allowed` set (the variable for an excluded register is simply never
//! created, dropping it from the must-allocate constraint exactly as in
//! Fig. 5 of the paper), and size differences arrive as non-negative
//! per-register byte penalties (relative to the cheapest register, so the
//! §5.4.1 discount is expressed as a penalty on every *other* register —
//! the same optimum with costs kept non-negative).
//!
//! This module prices those penalties with the §4 cost model.
//!
//! [`Machine::use_constraints`]: regalloc_x86::Machine::use_constraints

use regalloc_ir::PhysReg;
use regalloc_x86::OperandConstraint;

use crate::cost::CostModel;

/// The eq. (1) cost of holding an operand in `r`, given the operand's
/// constraint: `B ×` the per-register byte penalty. (The cycle component
/// of register choice is zero — only encoding size varies.)
pub fn use_cost(cost: &CostModel, c: &OperandConstraint, r: PhysReg) -> i64 {
    cost.action_cost(0, 0, c.penalty(r), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalties_scale_with_b() {
        let c = OperandConstraint {
            allowed: None,
            size_penalty: vec![(PhysReg(3), 1), (PhysReg(4), 2)],
        };
        let m = CostModel::paper();
        assert_eq!(use_cost(&m, &c, PhysReg(3)), 1000);
        assert_eq!(use_cost(&m, &c, PhysReg(4)), 2000);
        assert_eq!(use_cost(&m, &c, PhysReg(0)), 0);
        let s = CostModel::size_only();
        assert_eq!(use_cost(&s, &c, PhysReg(3)), 1);
    }
}
