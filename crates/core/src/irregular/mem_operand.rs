//! §5.2 — memory operands.
//!
//! Non-load/store architectures let instructions read operands directly
//! from memory, and sometimes read-modify-write one memory location
//! through a *combined* source/destination memory specifier. Under the
//! classical unique-spill-location assumption, the combined form applies
//! exactly when the same symbolic register is both a source and the
//! destination (`S = S op X`).
//!
//! The builder creates:
//!
//! * a `memuse[ρ]` variable per memory-capable use position
//!   ([`Machine::mem_use_ok`]), with `memuse[ρ] ≤ xm[pre]` (the value must
//!   be in its slot just prior) — entering the position's must-allocate
//!   constraint alongside the register-use variables;
//! * a `combined` variable per eligible read-modify-write definition
//!   ([`Machine::mem_combined_ok`] and the `S = S op X` shape), with
//!   `combined ≤ xm[pre]`, entering both the lhs-use must-allocate
//!   constraint and the must-define constraint — so definition and use are
//!   "optimally allocated both to registers, to a register and to memory
//!   using a separate memory specifier, or both to memory using a combined
//!   specifier" (§5.2);
//! * one *exclusivity* row per instruction, `Σ memuse + combined ≤ 1`,
//!   since the x86 encodes at most one memory operand per instruction.
//!
//! [`Machine::mem_use_ok`]: regalloc_x86::Machine::mem_use_ok
//! [`Machine::mem_combined_ok`]: regalloc_x86::Machine::mem_combined_ok

use regalloc_ir::{Dst, Inst, Loc, Operand, SymId};

/// True if `inst` has the `S = S op X` / `S = op S` shape (the same
/// symbolic as destination and combined source) that a combined memory
/// specifier can implement.
pub fn combined_mem_shape(inst: &Inst) -> Option<SymId> {
    match inst {
        Inst::Bin {
            dst: Dst::Loc(Loc::Sym(d)),
            lhs: Operand::Loc(Loc::Sym(l)),
            ..
        } if d == l => Some(*d),
        Inst::Un {
            dst: Dst::Loc(Loc::Sym(d)),
            src: Operand::Loc(Loc::Sym(s)),
            ..
        } if d == s => Some(*d),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::{BinOp, UnOp, Width};

    #[test]
    fn detects_read_modify_write_shape() {
        let s = SymId(4);
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Dst::sym(s),
            lhs: Operand::sym(s),
            rhs: Operand::Imm(1),
            width: Width::B32,
        };
        assert_eq!(combined_mem_shape(&i), Some(s));
        let j = Inst::Bin {
            op: BinOp::Add,
            dst: Dst::sym(SymId(5)),
            lhs: Operand::sym(s),
            rhs: Operand::Imm(1),
            width: Width::B32,
        };
        assert_eq!(combined_mem_shape(&j), None, "distinct dst and lhs");
    }

    #[test]
    fn unary_shape() {
        let s = SymId(2);
        let i = Inst::Un {
            op: UnOp::Not,
            dst: Dst::sym(s),
            src: Operand::sym(s),
            width: Width::B8,
        };
        assert_eq!(combined_mem_shape(&i), Some(s));
    }

    #[test]
    fn rhs_position_does_not_qualify() {
        let s = SymId(1);
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: Dst::sym(s),
            lhs: Operand::Imm(1),
            rhs: Operand::sym(s),
            width: Width::B32,
        };
        assert_eq!(combined_mem_shape(&i), None);
    }
}
