//! §5.5 — predefined memory symbolic registers.
//!
//! A *predefined memory value* exists in memory at function entry (here:
//! an incoming parameter in its stack slot). When a symbolic register is
//! defined by loading such a value and the §5.5 safety conditions hold —
//! (1) the definition is exactly that load, (2) the live ranges cannot
//! interfere, (3) the value is not aliased — the symbolic's home memory
//! location is *coalesced* with the predefined value's, with three
//! benefits the paper enumerates: the defining load is deleted outright,
//! runtime memory shrinks, and the IP gets smaller because the symbolic
//! register network between the deleted definition and the first use
//! degenerates to memory-only residence.
//!
//! Detection lives in [`analysis`](crate::analysis) (see
//! `Analysis::predefined`); this module implements the model-side
//! treatment of the deleted definition event:
//!
//! * no `def[r]` variables and no must-define constraint — the value
//!   simply *is* in memory, so the slot-validity variable `xm` of the
//!   outgoing segment is left unconstrained (free to be 1 at zero cost);
//! * the register-residence variables `x[S, post-def, r]` are fixed to 0 —
//!   the value can only enter a register through a later load, which the
//!   ordinary event machinery prices.
//!
//! The rewriter deletes the defining load (the paper's first benefit) and
//! allocates the symbolic's spill slot *on top of* the parameter's home
//! location ([`SlotInfo::home`](regalloc_ir::SlotInfo)), so spills of the
//! symbolic store through to the slot the value came from — which is
//! exactly the hazard of Figs. 7 and 8 that the safety conditions exist to
//! prevent, and the executable interpreter makes violations observable.

use regalloc_ilp::Model;

/// Fix the post-definition register-residence variables of a predefined
/// memory symbolic to zero (the value exists only in memory until its
/// first load).
pub fn fix_predef_def_registers(model: &mut Model, xs: &[Option<regalloc_ilp::VarId>]) {
    for x in xs.iter().flatten() {
        model.fix(*x, false);
    }
}
