//! §5.1 — combined source/destination specifiers and copy insertion.
//!
//! On a two-address machine the instruction `S1 = S2 op S3` writes its
//! result over the register holding one of its sources. The traditional
//! approach commits to one source *before* allocation by inserting a copy;
//! the paper instead lets the IP choose:
//!
//! * each eligible source operand gets *copy-insertion* variables
//!   `copy[S,r]` ("copy S into r just before the instruction"),
//!   constrained by `Σ_r copy[S,r] ≤ Σ_r x[S,pre,r]` — a copy is possible
//!   only if S is in some register just prior;
//! * each eligible source gets *use-end* variables
//!   `useEnd[S,r] ≤ use[S,r]`, with `useEnd[S,r] + x[S,post,r] ≤ 1` when
//!   S lives on (the allocation of S to r must actually end);
//! * the *combined specifier* constraint ties the definition to an ending
//!   source allocation: `def[S1,r] ≤ useEnd[S2,r] + useEnd[S3,r]`
//!   (the `S3` term only for commutative operations).
//!
//! The same `useEnd` machinery supports copy *deletion*: an input
//! `Copy S1 ← S2` can be removed exactly when `S1` is defined into a
//! register in which `S2`'s allocation ends, captured by negatively-costed
//! variables `dz[r] ≤ def[S1,r]`, `dz[r] ≤ useEnd[S2,r]`.

use regalloc_ir::{Inst, Loc, Operand, SymId};

/// Which source operands of `inst` share the combined source/destination
/// specifier.
///
/// Returns `(lhs, rhs)`:
/// * `lhs` — the symbolic in the combined position (`None` when the
///   position holds an immediate),
/// * `rhs` — for *commutative* operations, the symbolic in the other
///   source position, which may equally well be combined (§5.1).
pub fn two_addr_parts(inst: &Inst) -> (Option<SymId>, Option<SymId>) {
    match inst {
        Inst::Bin { op, lhs, rhs, .. } => {
            let l = match lhs {
                Operand::Loc(Loc::Sym(s)) => Some(*s),
                _ => None,
            };
            let r = if op.is_commutative() {
                match rhs {
                    Operand::Loc(Loc::Sym(s)) => Some(*s),
                    _ => None,
                }
            } else {
                None
            };
            (l, r)
        }
        Inst::Un { src, .. } => {
            let l = match src {
                Operand::Loc(Loc::Sym(s)) => Some(*s),
                _ => None,
            };
            (l, None)
        }
        _ => (None, None),
    }
}

/// True if `sym` occupies a source position of `inst` that may be chosen
/// as the combined source/destination operand — and therefore gets
/// copy-insertion and use-end variables.
pub fn is_combinable_source(inst: &Inst, sym: SymId) -> bool {
    let (l, r) = two_addr_parts(inst);
    l == Some(sym) || r == Some(sym)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::{BinOp, Dst, UnOp, Width};

    fn bin(op: BinOp, lhs: Operand, rhs: Operand) -> Inst {
        Inst::Bin {
            op,
            dst: Dst::sym(SymId(0)),
            lhs,
            rhs,
            width: Width::B32,
        }
    }

    #[test]
    fn commutative_offers_both_sources() {
        let i = bin(BinOp::Add, Operand::sym(SymId(1)), Operand::sym(SymId(2)));
        assert_eq!(two_addr_parts(&i), (Some(SymId(1)), Some(SymId(2))));
        assert!(is_combinable_source(&i, SymId(1)));
        assert!(is_combinable_source(&i, SymId(2)));
        assert!(!is_combinable_source(&i, SymId(3)));
    }

    #[test]
    fn non_commutative_offers_only_lhs() {
        let i = bin(BinOp::Sub, Operand::sym(SymId(1)), Operand::sym(SymId(2)));
        assert_eq!(two_addr_parts(&i), (Some(SymId(1)), None));
        assert!(!is_combinable_source(&i, SymId(2)));
    }

    #[test]
    fn immediate_lhs_of_commutative_leaves_rhs() {
        let i = bin(BinOp::Add, Operand::Imm(3), Operand::sym(SymId(2)));
        assert_eq!(two_addr_parts(&i), (None, Some(SymId(2))));
    }

    #[test]
    fn unary_source_is_combined() {
        let i = Inst::Un {
            op: UnOp::Neg,
            dst: Dst::sym(SymId(0)),
            src: Operand::sym(SymId(1)),
            width: Width::B32,
        };
        assert_eq!(two_addr_parts(&i), (Some(SymId(1)), None));
    }

    #[test]
    fn three_address_instructions_have_no_parts() {
        let i = Inst::Copy {
            dst: Loc::Sym(SymId(0)),
            src: Loc::Sym(SymId(1)),
            width: Width::B32,
        };
        assert_eq!(two_addr_parts(&i), (None, None));
    }
}
