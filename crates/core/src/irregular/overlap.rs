//! §5.3 — overlapping registers.
//!
//! Registers that share bit fields (AL/AX/EAX…) can together hold at most
//! one value. The machine model groups such registers into maximal
//! *register sets* sharing one underlying bit field
//! ([`Machine::overlap_groups`](regalloc_x86::Machine::overlap_groups)),
//! and the builder emits a **generalised single-symbolic constraint** per
//! set at every program point where occupancy can change:
//!
//! * a *pre* row at each event point sums, over every live symbolic and
//!   every set member it could occupy, the incoming-residence variables
//!   plus the actions that put a value into a register there (loads,
//!   rematerialisations, inserted copies, entry joins) — `Σ ≤ 1`;
//! * a *post* row (emitted when the point defines a register) sums the
//!   definition variables of the defining symbolics with the outgoing
//!   residence of everything else — `Σ ≤ 1`, which is what lets a
//!   definition reuse the register of a use that *ends* at the
//!   instruction (the two-address pattern) while still excluding every
//!   live value.
//!
//! Registers a symbolic cannot hold contribute no term, so the constraint
//! "shrinks" exactly as in the paper's example where the AX term
//! disappears when no 16-bit symbolic is live.

use regalloc_ilp::{Model, VarId};
use std::collections::HashSet;

/// Emit one `Σ terms ≤ 1` row per distinct non-trivial term set.
///
/// `rows` holds, per overlap group, the collected occupancy variables.
/// Groups whose term sets are identical (e.g. the {EAX,AX,AL} and
/// {EAX,AX,AH} sets in a function with no 8-bit values) produce a single
/// row; rows with fewer than two terms are trivially satisfied and
/// dropped.
pub fn emit_occupancy_rows(model: &mut Model, rows: Vec<Vec<VarId>>) {
    let mut seen: HashSet<Vec<VarId>> = HashSet::new();
    for mut terms in rows {
        if terms.len() < 2 {
            continue;
        }
        terms.sort();
        terms.dedup();
        if terms.len() < 2 || !seen.insert(terms.clone()) {
            continue;
        }
        model.add_le(terms.into_iter().map(|v| (v, 1.0)).collect(), 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_identical_groups_and_drops_trivial() {
        let mut m = Model::new();
        let a = m.add_var(0.0, "a");
        let b = m.add_var(0.0, "b");
        let c = m.add_var(0.0, "c");
        emit_occupancy_rows(
            &mut m,
            vec![
                vec![a, b],
                vec![b, a], // duplicate after sorting
                vec![c],    // trivial
                vec![a, c],
                vec![],
            ],
        );
        assert_eq!(m.num_rows(), 2);
    }
}
