//! The ORA solver module, part 1: constructing the 0-1 integer program.
//!
//! One binary variable is created per possible allocation action, priced by
//! the §4 cost model:
//!
//! * residence: `x[S,g,r]` (symbolic S occupies register r over segment g)
//!   and `xm[S,g]` (S's spill slot holds S's value over g) — cost 0;
//! * actions at events: `load`, `remat`, `store`, `copy` (§5.1), register
//!   `def`s, memory-operand uses and combined memory use/defs (§5.2), and
//!   per-role register `use`s carrying the §5.4 encoding penalties;
//! * at calls, separate post-call `load`/`remat` variables (values cannot
//!   survive the call in caller-saved registers, so reloads after the call
//!   are distinct actions from reloads feeding the call's own operands).
//!
//! Constraint families:
//!
//! * *chain* constraints: residence must be justified by an incoming
//!   residence or an action (`x[out] ≤ x[in] + load + remat + copy`,
//!   `x[out] ≤ def`, `xm[out] ≤ xm[in] + store`, `load ≤ xm[in]`, …);
//! * *must-allocate* per use (`Σ_r use[r] + memuse (+ combined) ≥ 1`) and
//!   *must-define* per definition (`Σ_r def[r] (+ combined) = 1`);
//! * the §5.1 combined-specifier constraints
//!   (`def[r] ≤ useEnd_lhs[r] + useEnd_rhs[r]`) with copy insertion, and
//!   copy deletion via negatively-costed conjunction variables;
//! * the §5.2 per-instruction memory-operand exclusivity row;
//! * the §5.3 generalised single-symbolic occupancy rows;
//! * CFG joins: block-entry residence is bounded by every predecessor's
//!   exit residence.

use std::collections::HashMap;

use regalloc_ilp::{Model, VarId};
use regalloc_ir::{Cfg, Function, Inst, PhysReg, Profile, SymId, UseRole};
use regalloc_x86::Machine;

use crate::analysis::{Analysis, Event, SegId};
use crate::cost::CostModel;
use crate::irregular::{encoding, mem_operand, overlap, predefined, two_address};
use crate::symbolic::{EventDecision, EventKey, RoleDecision, SymbolicSolution};

/// A pending constraint row: (coefficients, is-≥, right-hand side).
type PendingRow = (Vec<(VarId, f64)>, bool, f64);

/// Decision variables for one use position (role) of one event.
#[derive(Clone, Debug, Default)]
pub struct RoleVars {
    /// The syntactic role.
    pub role: Option<UseRole>,
    /// Per candidate register (indexed like the width class), the
    /// register-use variable.
    pub use_r: Vec<Option<VarId>>,
    /// Memory-operand use (§5.2).
    pub mem: Option<VarId>,
    /// Use-end variables (§5.1), where applicable.
    pub use_end: Vec<Option<VarId>>,
}

/// Join information for a block-entry event.
#[derive(Clone, Debug)]
pub struct JoinVars {
    /// Exit segments of the predecessors carrying the value.
    pub preds: Vec<SegId>,
    /// Join residence variables (`None` when a single predecessor's exit
    /// variables are used directly).
    pub j: Option<Vec<VarId>>,
    /// Join slot-validity variable (`None` for a single predecessor).
    pub jm: Option<VarId>,
}

/// All decision variables of one event.
#[derive(Clone, Debug, Default)]
pub struct EventVars {
    /// Reload into r before the instruction (after it for block entries).
    pub load: Vec<Option<VarId>>,
    /// Rematerialise into r before the instruction.
    pub remat: Vec<Option<VarId>>,
    /// Reload into r *after* a call.
    pub load_post: Vec<Option<VarId>>,
    /// Rematerialise into r after a call.
    pub remat_post: Vec<Option<VarId>>,
    /// Store to the spill slot.
    pub store: Option<VarId>,
    /// Register definition into r.
    pub def: Vec<Option<VarId>>,
    /// Combined memory use/def (§5.2).
    pub combined: Option<VarId>,
    /// §5.1 copy insertion: copy the symbolic into r just before the
    /// instruction.
    pub copy_to: Vec<Option<VarId>>,
    /// Per-role use variables.
    pub roles: Vec<RoleVars>,
    /// Entry-join bookkeeping.
    pub join: Option<JoinVars>,
    /// Copy-deletion conjunction variables (`dz[r] ≤ def[r]`,
    /// `dz[r] ≤ useEnd_src[r]`), negative cost.
    pub dz: Vec<Option<VarId>>,
}

/// A constructed integer program plus the decision-variable table the
/// rewrite module reads back.
#[derive(Clone, Debug)]
pub struct BuiltModel {
    /// The 0-1 program.
    pub model: Model,
    /// Residence variables per segment per candidate register.
    pub seg_x: Vec<Vec<VarId>>,
    /// Slot-validity variable per segment.
    pub seg_xm: Vec<VarId>,
    /// Per-event variables, parallel to [`Analysis::events`].
    pub events: Vec<EventVars>,
    /// Stable IR coordinate of each event, parallel to `events` — the
    /// key space of [`SymbolicSolution`]s lifted from or lowered onto
    /// this model.
    pub keys: Vec<EventKey>,
    /// Candidate registers of each event (the width class of its
    /// symbolic), parallel to `events`.
    pub event_regs: Vec<Vec<PhysReg>>,
    /// Outgoing segment of each event, parallel to `events`. Every
    /// segment is created by exactly one event's `gout`, which is what
    /// makes segment residence expressible in event coordinates.
    pub event_gout: Vec<Option<SegId>>,
}

/// Position of `r` in the width class `regs`.
fn ridx(regs: &[PhysReg], r: PhysReg) -> Option<usize> {
    regs.iter().position(|x| *x == r)
}

impl BuiltModel {
    /// Every decision variable touched by event `ei`, including the
    /// residence variables of the segment the event creates.
    fn event_var_ids(&self, ei: usize) -> Vec<VarId> {
        let ev = &self.events[ei];
        let mut out: Vec<VarId> = Vec::new();
        let mut opt = |vars: &[Option<VarId>]| out.extend(vars.iter().flatten());
        opt(&ev.load);
        opt(&ev.remat);
        opt(&ev.load_post);
        opt(&ev.remat_post);
        opt(&ev.def);
        opt(&ev.copy_to);
        opt(&ev.dz);
        out.extend(ev.store);
        out.extend(ev.combined);
        for rv in &ev.roles {
            out.extend(rv.use_r.iter().flatten());
            out.extend(rv.mem);
            out.extend(rv.use_end.iter().flatten());
        }
        if let Some(j) = &ev.join {
            if let Some(js) = &j.j {
                out.extend(js);
            }
            out.extend(j.jm);
        }
        if let Some(g) = self.event_gout[ei] {
            out.extend(&self.seg_x[g.index()]);
            out.push(self.seg_xm[g.index()]);
        }
        out
    }

    /// Lift a decision vector into stable IR coordinates. The inverse of
    /// [`BuiltModel::lower`] on this model: `lower(lift(v)) == v` for any
    /// vector over this model's variables.
    pub fn lift(&self, values: &[bool]) -> SymbolicSolution {
        let tv = |v: VarId| values.get(v.index()).copied().unwrap_or(false);
        let ov = |v: Option<VarId>| v.is_some_and(tv);
        let pick = |vars: &[Option<VarId>], regs: &[PhysReg]| -> Vec<PhysReg> {
            vars.iter()
                .enumerate()
                .filter(|(_, v)| v.is_some_and(tv))
                .map(|(i, _)| regs[i])
                .collect()
        };
        let mut decisions = Vec::with_capacity(self.events.len());
        for (ei, ev) in self.events.iter().enumerate() {
            let regs = &self.event_regs[ei];
            let mut d = EventDecision::default();
            if let Some(j) = &ev.join {
                if let Some(js) = &j.j {
                    d.join_regs = js
                        .iter()
                        .enumerate()
                        .filter(|(_, v)| tv(**v))
                        .map(|(i, _)| regs[i])
                        .collect();
                }
                d.join_mem = ov(j.jm);
            }
            d.loads = pick(&ev.load, regs);
            d.remats = pick(&ev.remat, regs);
            d.loads_post = pick(&ev.load_post, regs);
            d.remats_post = pick(&ev.remat_post, regs);
            d.store = ov(ev.store);
            d.def = ev
                .def
                .iter()
                .enumerate()
                .find(|(_, v)| v.is_some_and(tv))
                .map(|(i, _)| regs[i]);
            d.combined = ov(ev.combined);
            d.copies = pick(&ev.copy_to, regs);
            d.deletes = pick(&ev.dz, regs);
            for rv in &ev.roles {
                d.roles.push(RoleDecision {
                    regs: pick(&rv.use_r, regs),
                    mem: ov(rv.mem),
                    ends: pick(&rv.use_end, regs),
                });
            }
            if let Some(g) = self.event_gout[ei] {
                d.out_regs = self.seg_x[g.index()]
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| tv(**v))
                    .map(|(i, _)| regs[i])
                    .collect();
                d.out_mem = tv(self.seg_xm[g.index()]);
            }
            decisions.push((self.keys[ei], d));
        }
        SymbolicSolution::from_decisions(decisions)
    }

    /// Write one event's decision into `v`. `None` when any recorded
    /// choice names a variable this model does not have (inadmissible
    /// register, missing action, role-count mismatch).
    fn apply_decision(&self, ei: usize, d: &EventDecision, v: &mut [bool]) -> Option<()> {
        let ev = &self.events[ei];
        let regs = &self.event_regs[ei];
        fn set_list(
            vars: &[Option<VarId>],
            list: &[PhysReg],
            regs: &[PhysReg],
            v: &mut [bool],
        ) -> Option<()> {
            for &r in list {
                // A foreign decision can name an admissible register at
                // an event whose action list is shorter (or absent) on
                // this model — reject, never index out of bounds.
                let var = (*vars.get(ridx(regs, r)?)?)?;
                v[var.index()] = true;
            }
            Some(())
        }
        if !d.join_regs.is_empty() || d.join_mem {
            let j = ev.join.as_ref()?;
            if !d.join_regs.is_empty() {
                let js = j.j.as_ref()?;
                for &r in &d.join_regs {
                    v[js.get(ridx(regs, r)?)?.index()] = true;
                }
            }
            if d.join_mem {
                v[j.jm?.index()] = true;
            }
        }
        set_list(&ev.load, &d.loads, regs, v)?;
        set_list(&ev.remat, &d.remats, regs, v)?;
        set_list(&ev.load_post, &d.loads_post, regs, v)?;
        set_list(&ev.remat_post, &d.remats_post, regs, v)?;
        set_list(&ev.copy_to, &d.copies, regs, v)?;
        set_list(&ev.dz, &d.deletes, regs, v)?;
        if d.store {
            v[ev.store?.index()] = true;
        }
        if d.combined {
            v[ev.combined?.index()] = true;
        }
        if let Some(r) = d.def {
            let var = (*ev.def.get(ridx(regs, r)?)?)?;
            v[var.index()] = true;
        }
        if d.roles.len() != ev.roles.len() {
            return None;
        }
        for (rd, rv) in d.roles.iter().zip(&ev.roles) {
            set_list(&rv.use_r, &rd.regs, regs, v)?;
            set_list(&rv.use_end, &rd.ends, regs, v)?;
            if rd.mem {
                v[rv.mem?.index()] = true;
            }
        }
        if !d.out_regs.is_empty() || d.out_mem {
            let g = self.event_gout[ei]?;
            for &r in &d.out_regs {
                v[self.seg_x[g.index()].get(ridx(regs, r)?)?.index()] = true;
            }
            if d.out_mem {
                v[self.seg_xm[g.index()].index()] = true;
            }
        }
        Some(())
    }

    /// Lower a symbolic solution onto this model's variable space.
    /// Strict: every recorded choice must name an existing variable, or
    /// the whole lowering is refused. Events absent from `sol` get an
    /// all-false assignment. The result is *not* feasibility-checked —
    /// callers gate it through `model.is_feasible` (or full validation).
    pub fn lower(&self, sol: &SymbolicSolution) -> Option<Vec<bool>> {
        let mut v = vec![false; self.model.num_vars()];
        for ei in 0..self.events.len() {
            if let Some(d) = sol.get(&self.keys[ei]) {
                self.apply_decision(ei, d, &mut v)?;
            }
        }
        Some(v)
    }

    /// Project a (possibly foreign) symbolic solution onto this model,
    /// event by event: where a decision maps cleanly by coordinate, it
    /// replaces the `base` assignment for that event's variables; where
    /// it does not (no such event, inadmissible register, mismatched
    /// shape), the event keeps `base` — typically the spill-everything
    /// choice. The result may still be globally inconsistent, so callers
    /// must gate it through `model.is_feasible` and drop failures.
    pub fn project(&self, sol: &SymbolicSolution, base: &[bool]) -> Vec<bool> {
        let n = self.model.num_vars();
        let mut v = if base.len() == n {
            base.to_vec()
        } else {
            vec![false; n]
        };
        for ei in 0..self.events.len() {
            let Some(d) = sol.get(&self.keys[ei]) else {
                continue;
            };
            let vars = self.event_var_ids(ei);
            let saved: Vec<bool> = vars.iter().map(|x| v[x.index()]).collect();
            for x in &vars {
                v[x.index()] = false;
            }
            if self.apply_decision(ei, d, &mut v).is_none() {
                for (x, old) in vars.iter().zip(saved) {
                    v[x.index()] = old;
                }
            }
        }
        v
    }
}

/// All model costs are scaled by this factor, leaving room for tiny
/// per-register *symmetry-breaking* epsilons on action variables.
/// Interchangeable registers otherwise make the LP relaxation split
/// fractionally across permutations and branch-and-bound explores
/// factorially many equivalent subtrees; the paper observes the same
/// effect in reverse ("irregular costs break up the symmetry of the
/// integer program, decreasing the time spent by the solver"). The
/// epsilons (≤ 8 per chosen action) distort the true objective by
/// `#actions/8` cost units at most — around one percent of typical
/// totals. A larger scale would give a stronger exactness guarantee but
/// stretches the LP's numerical range (costs already span 1…10⁵ from the
/// profile weights); 64 balances tie-breaking power against the f64
/// conditioning of the simplex.
pub const COST_SCALE: i64 = 64;

struct Builder<'a, M: ?Sized> {
    f: &'a Function,
    cfg: &'a Cfg,
    profile: &'a Profile,
    a: &'a Analysis,
    machine: &'a M,
    cost: &'a CostModel,
    model: Model,
    seg_x: Vec<Vec<VarId>>,
    seg_xm: Vec<VarId>,
    events: Vec<EventVars>,
}

impl<'a, M: Machine + ?Sized> Builder<'a, M> {
    fn regs(&self, s: SymId) -> &'a [PhysReg] {
        self.machine.regs_for_width(self.f.sym_width(s))
    }

    fn freq(&self, e: &Event) -> u64 {
        self.profile.freq(e.block)
    }

    /// Scaled cost with a per-register symmetry-breaking epsilon.
    fn cs(&self, c: i64, reg_idx: usize) -> f64 {
        (c * COST_SCALE + (reg_idx as i64 % 8) + 1) as f64
    }

    /// Scaled cost without perturbation.
    fn c0(&self, c: i64) -> f64 {
        (c * COST_SCALE) as f64
    }

    fn inst(&self, e: &Event) -> &'a Inst {
        &self.f.block(e.block).insts[e.inst.expect("instruction event")]
    }

    /// The incoming residence variable of event `e` for candidate index
    /// `i` (entry events read their join).
    fn in_x(&self, e: &Event, ev: &EventVars, i: usize) -> Option<VarId> {
        if let Some(g) = e.gin {
            return Some(self.seg_x[g.index()][i]);
        }
        match &ev.join {
            Some(j) => match &j.j {
                Some(js) => Some(js[i]),
                None => j.preds.first().map(|p| self.seg_x[p.index()][i]),
            },
            None => None,
        }
    }

    /// The incoming slot-validity variable of event `e`.
    fn in_xm(&self, e: &Event, ev: &EventVars) -> Option<VarId> {
        if let Some(g) = e.gin {
            return Some(self.seg_xm[g.index()]);
        }
        match &ev.join {
            Some(j) => match j.jm {
                Some(jm) => Some(jm),
                None => j.preds.first().map(|p| self.seg_xm[p.index()]),
            },
            None => None,
        }
    }

    /// Create the residence variables of every segment.
    fn make_segments(&mut self) {
        for (gi, &s) in self.a.seg_sym.iter().enumerate() {
            let regs = self.regs(s);
            let xs: Vec<VarId> = regs
                .iter()
                .map(|r| self.model.add_var(0.0, format!("x_s{}_g{gi}_{r}", s.0)))
                .collect();
            let xm = self.model.add_var(0.0, format!("xm_s{}_g{gi}", s.0));
            // A live, non-rematerialisable value must exist *somewhere* —
            // a register or its spill slot — on every segment; losing it
            // would make later uses unsatisfiable. Redundant for the
            // integer program but a significant strengthening of the LP
            // relaxation (it blocks fractional "evaporate and regrow"
            // solutions).
            if self.a.remat[s.index()].is_none() {
                let mut row: Vec<(VarId, f64)> = xs.iter().map(|&x| (x, 1.0)).collect();
                row.push((xm, 1.0));
                self.model.add_ge(row, 1.0);
            }
            self.seg_x.push(xs);
            self.seg_xm.push(xm);
        }
    }

    /// Create the variables of one event (constraints follow in
    /// [`Builder::constrain_event`], once the whole group's variables
    /// exist).
    fn make_event_vars(&mut self, ei: usize) {
        let e = &self.a.events[ei];
        let s = e.sym;
        let w = self.f.sym_width(s);
        let regs = self.regs(s);
        let n = regs.len();
        let freq = self.freq(e);
        let sc = *self.machine.spill_costs();
        let mut ev = EventVars::default();

        // Entry join.
        if e.inst.is_none() {
            let preds: Vec<SegId> = self
                .cfg
                .preds(e.block)
                .iter()
                .filter_map(|p| self.a.exit_seg.get(&(*p, s)).copied())
                .collect();
            if preds.len() <= 1 {
                ev.join = Some(JoinVars {
                    preds,
                    j: None,
                    jm: None,
                });
            } else {
                let js: Vec<VarId> = regs
                    .iter()
                    .map(|r| self.model.add_var(0.0, format!("j_s{}_{r}", s.0)))
                    .collect();
                let jm = self.model.add_var(0.0, format!("jm_s{}", s.0));
                for &p in &preds {
                    for (i, &j) in js.iter().enumerate() {
                        let px = self.seg_x[p.index()][i];
                        self.model.add_le(vec![(j, 1.0), (px, -1.0)], 0.0);
                    }
                    let pm = self.seg_xm[p.index()];
                    self.model.add_le(vec![(jm, 1.0), (pm, -1.0)], 0.0);
                }
                ev.join = Some(JoinVars {
                    preds,
                    j: Some(js),
                    jm: Some(jm),
                });
            }
        }

        let is_entry = e.inst.is_none();
        let has_in = e.gin.is_some() || is_entry;

        // Pre loads and remats: feed uses and (through callee-saved
        // registers) the outgoing segment. Pure call-crossing events use
        // only the post-call variants.
        let wants_pre = has_in && (is_entry || !e.roles.is_empty() || !e.call);
        if wants_pre {
            let lc = self
                .cost
                .action_cost(freq, sc.load_cycles, sc.load_bytes, w.bytes() as u64);
            ev.load = regs
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    Some(
                        self.model
                            .add_var(self.cs(lc, i), format!("ld_s{}_{r}", s.0)),
                    )
                })
                .collect();
            if self.a.remat[s.index()].is_some() {
                let rc = self
                    .cost
                    .action_cost(freq, sc.remat_cycles, sc.remat_bytes, 0);
                ev.remat = regs
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        Some(
                            self.model
                                .add_var(self.cs(rc, i), format!("rm_s{}_{r}", s.0)),
                        )
                    })
                    .collect();
            }
        }
        if ev.load.is_empty() {
            ev.load = vec![None; n];
        }
        if ev.remat.is_empty() {
            ev.remat = vec![None; n];
        }

        // Post-call loads/remats.
        if e.call && e.gout.is_some() && has_in {
            let lc = self
                .cost
                .action_cost(freq, sc.load_cycles, sc.load_bytes, w.bytes() as u64);
            ev.load_post = regs
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    Some(
                        self.model
                            .add_var(self.cs(lc, i), format!("lp_s{}_{r}", s.0)),
                    )
                })
                .collect();
            if self.a.remat[s.index()].is_some() {
                let rc = self
                    .cost
                    .action_cost(freq, sc.remat_cycles, sc.remat_bytes, 0);
                ev.remat_post = regs
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        Some(
                            self.model
                                .add_var(self.cs(rc, i), format!("rp_s{}_{r}", s.0)),
                        )
                    })
                    .collect();
            }
        }
        if ev.load_post.is_empty() {
            ev.load_post = vec![None; n];
        }
        if ev.remat_post.is_empty() {
            ev.remat_post = vec![None; n];
        }

        // Register definitions.
        ev.def = vec![None; n];
        if e.defines && !e.predef_def {
            let inst = self.inst(e);
            let dc = self.machine.def_constraints(inst, w);
            for (i, &r) in regs.iter().enumerate() {
                if dc.admits(r) {
                    let c = self.cost.action_cost(0, 0, dc.penalty(r), 0);
                    ev.def[i] = Some(
                        self.model
                            .add_var(self.cs(c, i), format!("def_s{}_{r}", s.0)),
                    );
                }
            }
            // Combined memory use/def (§5.2): requires the S = S op X
            // shape, machine support, and S in memory just prior.
            if e.gin.is_some()
                && mem_operand::combined_mem_shape(inst) == Some(s)
                && self.machine.mem_combined_ok(inst)
            {
                let c = self.cost.action_cost(
                    freq,
                    sc.mem_combined_extra_cycles,
                    sc.mem_combined_extra_bytes,
                    2 * w.bytes() as u64,
                );
                ev.combined = Some(self.model.add_var(self.c0(c), format!("cmb_s{}", s.0)));
            }
        }

        // §5.1 copy insertion.
        if !is_entry {
            let inst = self.inst(e);
            if self.machine.is_two_address(inst)
                && two_address::is_combinable_source(inst, s)
                && e.gin.is_some()
            {
                let cc = self
                    .cost
                    .action_cost(freq, sc.copy_cycles, sc.copy_bytes, 0);
                ev.copy_to = regs
                    .iter()
                    .enumerate()
                    .map(|(i, r)| {
                        Some(
                            self.model
                                .add_var(self.cs(cc, i), format!("cp_s{}_{r}", s.0)),
                        )
                    })
                    .collect();
            }
        }
        if ev.copy_to.is_empty() {
            ev.copy_to = vec![None; n];
        }

        // Per-role use variables.
        if !is_entry {
            let inst = self.inst(e).clone();
            for role in &e.roles {
                let c = self.machine.use_constraints(&inst, *role, w);
                let mut rv = RoleVars {
                    role: Some(*role),
                    use_r: vec![None; n],
                    mem: None,
                    use_end: vec![None; n],
                };
                for (i, &r) in regs.iter().enumerate() {
                    if c.admits(r) {
                        let uc = encoding::use_cost(self.cost, &c, r);
                        rv.use_r[i] =
                            Some(self.model.add_var(self.c0(uc), format!("u_s{}_{r}", s.0)));
                    }
                }
                if self.machine.mem_use_ok(&inst, *role) {
                    let mc = self.cost.action_cost(
                        freq,
                        sc.mem_use_extra_cycles,
                        sc.mem_use_extra_bytes,
                        w.bytes() as u64,
                    );
                    rv.mem = Some(self.model.add_var(self.c0(mc), format!("mu_s{}", s.0)));
                }
                // Use-end variables where the §5.1 machinery needs them.
                let needs_end = (self.machine.is_two_address(&inst)
                    && match role {
                        UseRole::Src1 | UseRole::Src => {
                            two_address::two_addr_parts(&inst).0 == Some(s)
                        }
                        UseRole::Src2 => two_address::two_addr_parts(&inst).1 == Some(s),
                        _ => false,
                    })
                    || (matches!(inst, Inst::Copy { .. }) && *role == UseRole::Src);
                if needs_end {
                    for (i, &r) in regs.iter().enumerate() {
                        if rv.use_r[i].is_some() {
                            rv.use_end[i] =
                                Some(self.model.add_var(0.0, format!("ue_s{}_{r}", s.0)));
                        }
                    }
                }
                ev.roles.push(rv);
            }
        }

        // Store to the slot.
        let store_possible = if e.defines {
            !e.predef_def && ev.def.iter().any(Option::is_some)
        } else {
            has_in
        };
        if store_possible && e.gout.is_some() {
            let stc =
                self.cost
                    .action_cost(freq, sc.store_cycles, sc.store_bytes, w.bytes() as u64);
            ev.store = Some(self.model.add_var(self.c0(stc), format!("st_s{}", s.0)));
        }

        self.events[ei] = ev;
    }

    /// Add the constraints of one event. `group_events` maps symbolics to
    /// their event index within the same group (for cross-operand §5.1
    /// constraints).
    fn constrain_event(&mut self, ei: usize, group_events: &HashMap<SymId, usize>) {
        let e = &self.a.events[ei];
        let s = e.sym;
        let regs = self.regs(s);
        let n = regs.len();
        let freq = self.freq(e);
        let sc = *self.machine.spill_costs();
        let ev = self.events[ei].clone();
        let in_xm = self.in_xm(e, &ev);
        let mut rows: Vec<PendingRow> = Vec::new();

        // Pre-load feasibility, per register: load[r] ≤ xm_in. (A single
        // aggregated row would be smaller but lets a fractional slot
        // validity support a whole reload in the relaxation.)
        for l in ev.load.iter().flatten() {
            match in_xm {
                Some(xm) => rows.push((vec![(*l, 1.0), (xm, -1.0)], false, 0.0)),
                None => self.model.fix(*l, false),
            }
        }
        // Post-call reloads may also be fed by a store earlier in the
        // same event (the classic store-before/reload-after-call pair).
        for l in ev.load_post.iter().flatten() {
            let mut row = vec![(*l, 1.0)];
            if let Some(xm) = in_xm {
                row.push((xm, -1.0));
            }
            if let Some(st) = ev.store {
                row.push((st, -1.0));
            }
            rows.push((row, false, 0.0));
        }

        // Copy insertion feasibility: Σ copy ≤ Σ x_in (§5.1).
        let copies: Vec<VarId> = ev.copy_to.iter().flatten().copied().collect();
        if !copies.is_empty() {
            let mut row: Vec<(VarId, f64)> = copies.iter().map(|&v| (v, 1.0)).collect();
            let mut any = false;
            for i in 0..n {
                if let Some(x) = self.in_x(e, &ev, i) {
                    row.push((x, -1.0));
                    any = true;
                }
            }
            if any {
                rows.push((row, false, 0.0));
            } else {
                for &c in &copies {
                    self.model.fix(c, false);
                }
            }
        }

        // Store feasibility.
        if let Some(st) = ev.store {
            let mut row = vec![(st, 1.0)];
            if e.defines {
                for d in ev.def.iter().flatten() {
                    row.push((*d, -1.0));
                }
            } else {
                for i in 0..n {
                    if let Some(x) = self.in_x(e, &ev, i) {
                        row.push((x, -1.0));
                    }
                }
            }
            if row.len() == 1 {
                self.model.fix(st, false);
            } else {
                rows.push((row, false, 0.0));
            }
        }

        // Per-role rows.
        for rv in &ev.roles {
            // Presence: use[r] ≤ x_in[r] + load[r] + remat[r] + copy[r].
            for i in 0..n {
                if let Some(u) = rv.use_r[i] {
                    let mut row = vec![(u, 1.0)];
                    if let Some(x) = self.in_x(e, &ev, i) {
                        row.push((x, -1.0));
                    }
                    for v in [ev.load[i], ev.remat[i], ev.copy_to[i]]
                        .into_iter()
                        .flatten()
                    {
                        row.push((v, -1.0));
                    }
                    if row.len() == 1 {
                        self.model.fix(u, false);
                    } else {
                        rows.push((row, false, 0.0));
                    }
                }
            }
            // Memory-operand feasibility: mem ≤ xm_in.
            if let Some(m) = rv.mem {
                match in_xm {
                    Some(xm) => rows.push((vec![(m, 1.0), (xm, -1.0)], false, 0.0)),
                    None => self.model.fix(m, false),
                }
            }
            // Must-allocate: Σ use + mem (+ combined when this role is the
            // combined source position) ≥ 1.
            let mut row: Vec<(VarId, f64)> = rv.use_r.iter().flatten().map(|&v| (v, 1.0)).collect();
            if let Some(m) = rv.mem {
                row.push((m, 1.0));
            }
            if let Some(cmb) = ev.combined {
                let is_lhs_role = matches!(rv.role, Some(UseRole::Src1) | Some(UseRole::Src));
                if is_lhs_role {
                    row.push((cmb, 1.0));
                }
            }
            rows.push((row, true, 1.0));
            // Use-end: ue ≤ use; ue + x_out ≤ 1 when the value lives on.
            for i in 0..n {
                if let Some(ue) = rv.use_end[i] {
                    let u = rv.use_r[i].expect("use-end implies use var");
                    rows.push((vec![(ue, 1.0), (u, -1.0)], false, 0.0));
                    if !e.defines {
                        if let Some(gout) = e.gout {
                            let xo = self.seg_x[gout.index()][i];
                            rows.push((vec![(ue, 1.0), (xo, 1.0)], false, 1.0));
                        }
                    }
                }
            }
        }

        // Combined memory use/def feasibility (§5.2): combined ≤ xm_in.
        if let Some(cmb) = ev.combined {
            match in_xm {
                Some(xm) => rows.push((vec![(cmb, 1.0), (xm, -1.0)], false, 0.0)),
                None => self.model.fix(cmb, false),
            }
        }

        // Must-define (exactly once) and the §5.1 combined-specifier
        // constraint.
        if e.defines && !e.predef_def {
            let mut row: Vec<(VarId, f64)> = ev.def.iter().flatten().map(|&v| (v, 1.0)).collect();
            if let Some(cmb) = ev.combined {
                row.push((cmb, 1.0));
            }
            rows.push((row, true, 1.0)); // ≥ 1; uniqueness via occupancy? No: equality.
            let mut row: Vec<(VarId, f64)> = ev.def.iter().flatten().map(|&v| (v, 1.0)).collect();
            if let Some(cmb) = ev.combined {
                row.push((cmb, 1.0));
            }
            rows.push((row, false, 1.0)); // ≤ 1 — together: = 1.

            let inst = self.inst(e);
            if self.machine.is_two_address(inst) {
                let (lsym, rsym) = two_address::two_addr_parts(inst);
                // Locate the use-end variables of the source events.
                let end_vars =
                    |sym: Option<SymId>, b: &Builder<'a, M>| -> Vec<Vec<Option<VarId>>> {
                        let mut out = Vec::new();
                        if let Some(sy) = sym {
                            if let Some(&oei) = group_events.get(&sy) {
                                for rv in &b.events[oei].roles {
                                    if rv.use_end.iter().any(Option::is_some) {
                                        let matches_pos = match rv.role {
                                            Some(UseRole::Src1) | Some(UseRole::Src) => {
                                                lsym == Some(sy)
                                            }
                                            Some(UseRole::Src2) => rsym == Some(sy),
                                            _ => false,
                                        };
                                        if matches_pos {
                                            out.push(rv.use_end.clone());
                                        }
                                    }
                                }
                            }
                        }
                        out
                    };
                let lends = end_vars(lsym, self);
                let rends = if rsym == lsym {
                    Vec::new()
                } else {
                    end_vars(rsym, self)
                };
                if !(lends.is_empty() && rends.is_empty()) {
                    for i in 0..n {
                        if let Some(d) = ev.def[i] {
                            let mut row = vec![(d, 1.0)];
                            for ends in lends.iter().chain(&rends) {
                                // Source and destination share a width
                                // class (verifier-checked), so candidate
                                // index i denotes the same register.
                                if let Some(Some(ue)) = ends.get(i) {
                                    row.push((*ue, -1.0));
                                }
                            }
                            if row.len() == 1 {
                                self.model.fix(d, false);
                            } else {
                                rows.push((row, false, 0.0));
                            }
                        }
                    }
                }
            }

            // Copy deletion (§5.1): dz[r] ≤ def[r], dz[r] ≤ useEnd_src[r].
            if let Inst::Copy {
                src: regalloc_ir::Loc::Sym(src),
                ..
            } = self.inst(e)
            {
                let src = *src;
                if src != s {
                    if let Some(&sei) = group_events.get(&src) {
                        let src_ends: Option<Vec<Option<VarId>>> = self.events[sei]
                            .roles
                            .iter()
                            .find(|rv| rv.role == Some(UseRole::Src))
                            .map(|rv| rv.use_end.clone());
                        if let Some(ends) = src_ends {
                            let cc = self
                                .cost
                                .action_cost(freq, sc.copy_cycles, sc.copy_bytes, 0);
                            let mut dz = vec![None; n];
                            let mut sum: Vec<(VarId, f64)> = Vec::new();
                            for (i, dzi) in dz.iter_mut().enumerate() {
                                if let (Some(d), Some(Some(ue))) = (ev.def[i], ends.get(i)) {
                                    let z = self.model.add_var(
                                        -self.c0(cc) + ((i % 8) as f64 + 1.0),
                                        format!("dz_s{}", s.0),
                                    );
                                    self.model.add_le(vec![(z, 1.0), (d, -1.0)], 0.0);
                                    self.model.add_le(vec![(z, 1.0), (*ue, -1.0)], 0.0);
                                    sum.push((z, 1.0));
                                    *dzi = Some(z);
                                }
                            }
                            if !sum.is_empty() {
                                self.model.add_le(sum, 1.0);
                                self.events[ei].dz = dz;
                            }
                        }
                    }
                }
            }
        }

        // Outgoing continuity.
        if let Some(gout) = e.gout {
            let gi = gout.index();
            if e.defines {
                if e.predef_def {
                    // §5.5: the value exists only in memory after its
                    // deleted definition; register residence is fixed off
                    // and xm is free.
                    let xs: Vec<Option<VarId>> = self.seg_x[gi].iter().map(|v| Some(*v)).collect();
                    predefined::fix_predef_def_registers(&mut self.model, &xs);
                } else {
                    for i in 0..n {
                        let xo = self.seg_x[gi][i];
                        match ev.def[i] {
                            Some(d) => rows.push((vec![(xo, 1.0), (d, -1.0)], false, 0.0)),
                            None => self.model.fix(xo, false),
                        }
                    }
                    let xmo = self.seg_xm[gi];
                    let mut row = vec![(xmo, 1.0)];
                    if let Some(st) = ev.store {
                        row.push((st, -1.0));
                    }
                    if let Some(cmb) = ev.combined {
                        row.push((cmb, -1.0));
                    }
                    if row.len() == 1 {
                        self.model.fix(xmo, false);
                    } else {
                        rows.push((row, false, 0.0));
                    }
                }
            } else {
                for (i, &reg) in regs.iter().enumerate() {
                    let xo = self.seg_x[gi][i];
                    let mut row = vec![(xo, 1.0)];
                    let survives_call = !e.call || !self.machine.is_caller_saved(reg);
                    if survives_call {
                        if let Some(x) = self.in_x(e, &ev, i) {
                            row.push((x, -1.0));
                        }
                        for v in [ev.load[i], ev.remat[i], ev.copy_to[i]]
                            .into_iter()
                            .flatten()
                        {
                            row.push((v, -1.0));
                        }
                    }
                    for v in [ev.load_post[i], ev.remat_post[i]].into_iter().flatten() {
                        row.push((v, -1.0));
                    }
                    if row.len() == 1 {
                        self.model.fix(xo, false);
                    } else {
                        rows.push((row, false, 0.0));
                    }
                }
                let xmo = self.seg_xm[gout.index()];
                let mut row = vec![(xmo, 1.0)];
                if let Some(xm) = in_xm {
                    row.push((xm, -1.0));
                }
                if let Some(st) = ev.store {
                    row.push((st, -1.0));
                }
                if row.len() == 1 {
                    self.model.fix(xmo, false);
                } else {
                    rows.push((row, false, 0.0));
                }
            }
        }

        for (coeffs, ge, rhs) in rows {
            if ge {
                self.model.add_ge(coeffs, rhs);
            } else {
                self.model.add_le(coeffs, rhs);
            }
        }
    }

    /// Group-level rows: memory-operand exclusivity (§5.2) and the
    /// generalised single-symbolic occupancy rows (§5.3).
    fn constrain_group(&mut self, group: &crate::analysis::EventGroup) {
        // At most one memory operand per instruction.
        let mut mems: Vec<VarId> = Vec::new();
        for &ei in &group.events {
            let ev = &self.events[ei];
            for rv in &ev.roles {
                if let Some(m) = rv.mem {
                    mems.push(m);
                }
            }
            if let Some(cmb) = ev.combined {
                mems.push(cmb);
            }
        }
        if mems.len() >= 2 {
            self.model
                .add_le(mems.into_iter().map(|v| (v, 1.0)).collect(), 1.0);
        }

        // Occupancy rows per overlap group.
        let groups = self.machine.overlap_groups().to_vec();
        let mut pre_rows: Vec<Vec<VarId>> = Vec::new();
        let mut post_rows: Vec<Vec<VarId>> = Vec::new();
        let mut any_def = false;
        let mut any_call = false;
        for g in &groups {
            let mut pre: Vec<VarId> = Vec::new();
            let mut post: Vec<VarId> = Vec::new();
            for &ei in &group.events {
                let e = &self.a.events[ei];
                let ev = &self.events[ei];
                let regs = self.regs(e.sym);
                any_def |= e.defines;
                any_call |= e.call;
                for &r in g {
                    if let Some(i) = ridx(regs, r) {
                        if let Some(x) = self.in_x(e, ev, i) {
                            pre.push(x);
                        }
                        for v in [ev.load[i], ev.remat[i], ev.copy_to[i]]
                            .into_iter()
                            .flatten()
                        {
                            pre.push(v);
                        }
                        if e.defines {
                            if let Some(d) = ev.def[i] {
                                post.push(d);
                            }
                        } else if let Some(gout) = e.gout {
                            post.push(self.seg_x[gout.index()][i]);
                        }
                    }
                }
            }
            for &(sy, seg) in &group.through {
                let regs = self.regs(sy);
                for &r in g {
                    if let Some(i) = ridx(regs, r) {
                        let x = self.seg_x[seg.index()][i];
                        pre.push(x);
                        post.push(x);
                    }
                }
            }
            pre_rows.push(pre);
            post_rows.push(post);
        }
        overlap::emit_occupancy_rows(&mut self.model, pre_rows);
        if any_def || any_call {
            overlap::emit_occupancy_rows(&mut self.model, post_rows);
        }
    }
}

/// Build the integer program for `f`.
pub fn build_model<M: Machine + ?Sized>(
    f: &Function,
    cfg: &Cfg,
    profile: &Profile,
    a: &Analysis,
    machine: &M,
    cost: &CostModel,
) -> BuiltModel {
    let mut b = Builder {
        f,
        cfg,
        profile,
        a,
        machine,
        cost,
        model: Model::new(),
        seg_x: Vec::new(),
        seg_xm: Vec::new(),
        events: vec![EventVars::default(); a.events.len()],
    };
    b.make_segments();
    for block in f.block_ids() {
        for group in &a.block_groups[block.index()] {
            for &ei in &group.events {
                b.make_event_vars(ei);
            }
            let map: HashMap<SymId, usize> = group
                .events
                .iter()
                .map(|&ei| (a.events[ei].sym, ei))
                .collect();
            for &ei in &group.events {
                b.constrain_event(ei, &map);
            }
            b.constrain_group(group);
        }
    }
    let keys = a
        .events
        .iter()
        .map(|e| EventKey {
            sym: e.sym.0,
            block: e.block.0,
            inst: e.inst.map(|i| i as u32),
        })
        .collect();
    let event_regs = a
        .events
        .iter()
        .map(|e| machine.regs_for_width(f.sym_width(e.sym)).to_vec())
        .collect();
    let event_gout = a.events.iter().map(|e| e.gout).collect();
    BuiltModel {
        model: b.model,
        seg_x: b.seg_x,
        seg_xm: b.seg_xm,
        events: b.events,
        keys,
        event_regs,
        event_gout,
    }
}

/// A cheap, analysis-free estimate of the number of constraint rows
/// [`build_model`] would emit for `f`.
///
/// The driver's deadline-aware scheduler orders its queue
/// cheapest-model-first so that, when a global wall-clock budget starts
/// to bind, the functions sacrificed to shrunken deadlines are the
/// expensive tail — the same shape as the paper's Table 2, where the
/// handful of unsolved functions are the largest ones. Building the real
/// model (liveness, analysis, variable creation) just to *order* the
/// queue would cost a noticeable fraction of the solve itself, so this
/// estimate works from structural counts alone:
///
/// * every operand reference (use or def) spawns an event, and each
///   event contributes a bounded batch of chain / must-allocate /
///   exclusivity rows — the dominant term;
/// * every block boundary contributes join and occupancy rows for the
///   symbolic registers live across it, approximated by the total
///   symbolic-register count.
///
/// The estimate correlates with `BuiltModel::model.num_rows()` but does
/// not equal it; it is monotone enough for scheduling, which is all the
/// driver needs.
pub fn estimate_constraints(f: &Function) -> usize {
    let mut refs = 0usize;
    for (_, _, inst) in f.insts() {
        inst.visit_uses(&mut |_, _| refs += 1);
        if inst.def().is_some() {
            refs += 1;
        }
    }
    3 * refs + 2 * f.num_blocks() + f.num_syms() + 1
}

#[cfg(test)]
mod estimate_tests {
    use super::*;
    use regalloc_ir::{BinOp, FunctionBuilder, Operand, Width};

    fn chain(n: usize) -> Function {
        let mut b = FunctionBuilder::new("chain");
        let mut x = b.new_sym(Width::B32);
        b.load_imm(x, 1);
        for _ in 0..n {
            let y = b.new_sym(Width::B32);
            b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(1));
            x = y;
        }
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn estimate_is_positive_and_monotone_in_size() {
        let small = estimate_constraints(&chain(4));
        let large = estimate_constraints(&chain(40));
        assert!(small > 0);
        assert!(
            large > small,
            "larger function must estimate larger: {small} vs {large}"
        );
    }
}
