//! The ORA rewrite module (§2): reads solved decision variables back out
//! of the table and rewrites the function.
//!
//! Every symbolic register is replaced by the physical register its
//! chosen use/def variables name; spill loads, stores, rematerialisations
//! and §5.1 copies are inserted at the event points whose action
//! variables are 1; deletable copies and the defining loads of §5.5
//! predefined memory symbolic registers are removed; §5.2 memory operands
//! are folded into their instructions.
//!
//! The module also accumulates the [`SpillStats`] that feed the paper's
//! Table 3 comparison.

use std::collections::HashMap;

use regalloc_ilp::VarId;
use regalloc_ir::{Dst, Function, Inst, Loc, Operand, PhysReg, Profile, SlotId, SymId};
use regalloc_x86::Machine;

use crate::analysis::{Analysis, Event};
use crate::build::{BuiltModel, EventVars};
use crate::stats::SpillStats;

/// Apply the solver's assignment to `f`, producing the allocated function
/// and its spill accounting.
///
/// # Panics
///
/// Panics if the assignment violates the model's own invariants (e.g. no
/// definition register chosen) — such a violation is a solver or builder
/// bug, caught loudly rather than silently miscompiled.
pub fn apply<M: Machine + ?Sized>(
    f: &Function,
    profile: &Profile,
    a: &Analysis,
    built: &BuiltModel,
    values: &[bool],
    machine: &M,
) -> (Function, SpillStats) {
    Rewriter {
        f,
        profile,
        a,
        built,
        values,
        machine,
        stats: SpillStats::default(),
        slots: HashMap::new(),
    }
    .run()
}

struct Rewriter<'a, M: ?Sized> {
    f: &'a Function,
    profile: &'a Profile,
    a: &'a Analysis,
    built: &'a BuiltModel,
    values: &'a [bool],
    machine: &'a M,
    stats: SpillStats,
    slots: HashMap<SymId, SlotId>,
}

impl<'a, M: Machine + ?Sized> Rewriter<'a, M> {
    fn tv(&self, v: VarId) -> bool {
        self.values[v.index()]
    }

    fn ov(&self, v: Option<VarId>) -> bool {
        v.is_some_and(|v| self.tv(v))
    }

    fn regs(&self, s: SymId) -> &'a [PhysReg] {
        self.machine.regs_for_width(self.f.sym_width(s))
    }

    /// Incoming residence register of an event (first candidate whose
    /// residence variable is 1).
    fn in_reg(&self, e: &Event, ev: &EventVars) -> Option<PhysReg> {
        let regs = self.regs(e.sym);
        let lookup = |xs: &[VarId]| -> Option<PhysReg> {
            xs.iter().position(|&x| self.tv(x)).map(|i| regs[i])
        };
        if let Some(g) = e.gin {
            return lookup(&self.built.seg_x[g.index()]);
        }
        if let Some(j) = &ev.join {
            return match &j.j {
                Some(js) => js.iter().position(|&x| self.tv(x)).map(|i| regs[i]),
                None => j
                    .preds
                    .first()
                    .and_then(|p| lookup(&self.built.seg_x[p.index()])),
            };
        }
        None
    }

    fn slot(&mut self, s: SymId, nf: &mut Function) -> SlotId {
        if let Some(&sl) = self.slots.get(&s) {
            return sl;
        }
        let home = self.a.predefined[s.index()];
        let sl = nf.add_slot(self.f.sym_width(s), home);
        self.slots.insert(s, sl);
        sl
    }

    fn run(mut self) -> (Function, SpillStats) {
        let mut nf = self.f.clone();
        let sc = *self.machine.spill_costs();

        for b in self.f.block_ids() {
            let mut out: Vec<Inst> = Vec::new();
            let freq = self.profile.freq(b);
            let groups = &self.a.block_groups[b.index()];
            let mut gi = 0;

            // Block-entry actions.
            if groups.first().is_some_and(|g| g.inst.is_none()) {
                let group = &groups[0];
                gi = 1;
                // Stores first (they read predecessor state), then
                // reloads and rematerialisations.
                for &ei in &group.events {
                    let (e, ev) = (&self.a.events[ei], &self.built.events[ei]);
                    if self.ov(ev.store) {
                        let src = self
                            .in_reg(e, ev)
                            .expect("entry store needs an incoming register");
                        let slot = self.slot(e.sym, &mut nf);
                        out.push(Inst::SpillStore {
                            slot,
                            src: Loc::Real(src),
                            width: self.f.sym_width(e.sym),
                        });
                        self.stats.stores += freq as i64;
                        self.stats.code_bytes += sc.store_bytes as i64;
                    }
                }
                for &ei in &group.events {
                    let (e, ev) = (&self.a.events[ei], &self.built.events[ei]);
                    self.emit_loads(e, ev, freq, &mut nf, &mut out);
                }
            }

            for (ii, inst) in self.f.block(b).insts.iter().enumerate() {
                let group = groups.get(gi).filter(|g| g.inst == Some(ii));
                let group = match group {
                    Some(g) => {
                        gi += 1;
                        g
                    }
                    None => {
                        out.push(inst.clone());
                        continue;
                    }
                };

                let by_sym: HashMap<SymId, usize> = group
                    .events
                    .iter()
                    .map(|&ei| (self.a.events[ei].sym, ei))
                    .collect();

                // Pre-instruction actions: stores, copies, loads, remats.
                for &ei in &group.events {
                    let (e, ev) = (&self.a.events[ei], &self.built.events[ei]);
                    if !e.defines && self.ov(ev.store) {
                        let src = self
                            .in_reg(e, ev)
                            .expect("store needs an incoming register");
                        let slot = self.slot(e.sym, &mut nf);
                        out.push(Inst::SpillStore {
                            slot,
                            src: Loc::Real(src),
                            width: self.f.sym_width(e.sym),
                        });
                        self.stats.stores += freq as i64;
                        self.stats.code_bytes += sc.store_bytes as i64;
                    }
                }
                for &ei in &group.events {
                    let (e, ev) = (&self.a.events[ei], &self.built.events[ei]);
                    let regs = self.regs(e.sym);
                    for (i, c) in ev.copy_to.iter().enumerate() {
                        if self.ov(*c) {
                            let src = self.in_reg(e, ev).expect("copy needs an incoming register");
                            out.push(Inst::Copy {
                                dst: Loc::Real(regs[i]),
                                src: Loc::Real(src),
                                width: self.f.sym_width(e.sym),
                            });
                            self.stats.copies += freq as i64;
                            self.stats.code_bytes += sc.copy_bytes as i64;
                        }
                    }
                }
                for &ei in &group.events {
                    let (e, ev) = (&self.a.events[ei], &self.built.events[ei]);
                    self.emit_loads(e, ev, freq, &mut nf, &mut out);
                }

                // The instruction itself.
                let def_event = group
                    .events
                    .iter()
                    .copied()
                    .find(|&ei| self.a.events[ei].defines);
                let deleted = if def_event.is_some_and(|ei| self.a.events[ei].predef_def) {
                    // §5.5: the defining load of a predefined memory
                    // symbolic is removed; the value already lives in its
                    // home location.
                    self.stats.loads -= freq as i64;
                    self.stats.code_bytes -= self.machine.inst_size(inst) as i64;
                    true
                } else if def_event
                    .is_some_and(|ei| self.built.events[ei].dz.iter().any(|z| self.ov(*z)))
                {
                    // §5.1 copy deletion.
                    self.stats.copies -= freq as i64;
                    self.stats.code_bytes -= sc.copy_bytes as i64;
                    true
                } else {
                    false
                };
                if !deleted {
                    let rewritten = self.rewrite_inst(inst, &by_sym, freq, &mut nf);
                    out.push(rewritten);
                }

                // Post-instruction actions: definition stores, post-call
                // reloads/rematerialisations.
                for &ei in &group.events {
                    let (e, ev) = (&self.a.events[ei], &self.built.events[ei]);
                    if e.defines && self.ov(ev.store) {
                        let regs = self.regs(e.sym);
                        let d = ev
                            .def
                            .iter()
                            .position(|d| self.ov(*d))
                            .expect("definition store needs a defined register");
                        let slot = self.slot(e.sym, &mut nf);
                        out.push(Inst::SpillStore {
                            slot,
                            src: Loc::Real(regs[d]),
                            width: self.f.sym_width(e.sym),
                        });
                        self.stats.stores += freq as i64;
                        self.stats.code_bytes += sc.store_bytes as i64;
                    }
                }
                for &ei in &group.events {
                    let (e, ev) = (&self.a.events[ei], &self.built.events[ei]);
                    let regs = self.regs(e.sym);
                    for (i, l) in ev.load_post.iter().enumerate() {
                        if self.ov(*l) {
                            let slot = self.slot(e.sym, &mut nf);
                            out.push(Inst::SpillLoad {
                                dst: Loc::Real(regs[i]),
                                slot,
                                width: self.f.sym_width(e.sym),
                            });
                            self.stats.loads += freq as i64;
                            self.stats.code_bytes += sc.load_bytes as i64;
                        }
                    }
                    for (i, r) in ev.remat_post.iter().enumerate() {
                        if self.ov(*r) {
                            let imm = self.a.remat[e.sym.index()].expect("remat value");
                            out.push(Inst::LoadImm {
                                dst: Loc::Real(regs[i]),
                                imm,
                                width: self.f.sym_width(e.sym),
                            });
                            self.stats.remats += freq as i64;
                            self.stats.code_bytes += sc.remat_bytes as i64;
                        }
                    }
                }
            }
            nf.block_mut(b).insts = out;
        }
        (nf, self.stats)
    }

    fn emit_loads(
        &mut self,
        e: &Event,
        ev: &EventVars,
        freq: u64,
        nf: &mut Function,
        out: &mut Vec<Inst>,
    ) {
        let sc = *self.machine.spill_costs();
        let regs = self.regs(e.sym);
        for (i, l) in ev.load.iter().enumerate() {
            if self.ov(*l) {
                let slot = self.slot(e.sym, nf);
                out.push(Inst::SpillLoad {
                    dst: Loc::Real(regs[i]),
                    slot,
                    width: self.f.sym_width(e.sym),
                });
                self.stats.loads += freq as i64;
                self.stats.code_bytes += sc.load_bytes as i64;
            }
        }
        for (i, r) in ev.remat.iter().enumerate() {
            if self.ov(*r) {
                let imm = self.a.remat[e.sym.index()].expect("remat value");
                out.push(Inst::LoadImm {
                    dst: Loc::Real(regs[i]),
                    imm,
                    width: self.f.sym_width(e.sym),
                });
                self.stats.remats += freq as i64;
                self.stats.code_bytes += sc.remat_bytes as i64;
            }
        }
    }

    /// Choose the register (or memory) for the next role of `sym`'s event.
    /// `prefer` nudges register selection (two-address matching).
    fn role_choice(
        &mut self,
        by_sym: &HashMap<SymId, usize>,
        cursors: &mut HashMap<SymId, usize>,
        sym: SymId,
        prefer: Option<PhysReg>,
        freq: u64,
    ) -> OperandChoice {
        let ei = by_sym[&sym];
        let ev = &self.built.events[ei];
        let cur = cursors.entry(sym).or_insert(0);
        let rv = &ev.roles[*cur];
        *cur += 1;
        if self.ov(rv.mem) {
            let sc = *self.machine.spill_costs();
            self.stats.mem_operand_cycles += (freq * sc.mem_use_extra_cycles) as i64;
            self.stats.code_bytes += sc.mem_use_extra_bytes as i64;
            return OperandChoice::Mem;
        }
        let regs = self.regs(sym);
        if let Some(p) = prefer {
            if let Some(i) = regs.iter().position(|r| *r == p) {
                if self.ov(rv.use_r[i]) {
                    return OperandChoice::Reg(p);
                }
            }
        }
        let i = rv
            .use_r
            .iter()
            .position(|u| self.ov(*u))
            .expect("a use variable must be chosen (must-allocate)");
        OperandChoice::Reg(regs[i])
    }

    /// Rewrite one instruction's operands per the solved variables.
    fn rewrite_inst(
        &mut self,
        inst: &Inst,
        by_sym: &HashMap<SymId, usize>,
        freq: u64,
        nf: &mut Function,
    ) -> Inst {
        let mut cursors: HashMap<SymId, usize> = HashMap::new();
        let sc = *self.machine.spill_costs();

        // The definition register, if this instruction defines one.
        let def_info: Option<(SymId, Option<PhysReg>, bool)> = inst.sym_def().map(|d| {
            let ev = &self.built.events[by_sym[&d]];
            if self.ov(ev.combined) {
                (d, None, true)
            } else {
                let regs = self.regs(d);
                let i = ev
                    .def
                    .iter()
                    .position(|v| self.ov(*v))
                    .expect("must-define picks a register");
                (d, Some(regs[i]), false)
            }
        });

        fn loc<M2: Machine + ?Sized>(
            s: &mut Rewriter<'_, M2>,
            by_sym: &HashMap<SymId, usize>,
            cursors: &mut HashMap<SymId, usize>,
            freq: u64,
            l: Loc,
            prefer: Option<PhysReg>,
        ) -> Loc {
            match l {
                Loc::Sym(sym) => match s.role_choice(by_sym, cursors, sym, prefer, freq) {
                    OperandChoice::Reg(r) => Loc::Real(r),
                    OperandChoice::Mem => unreachable!("register positions never fold to memory"),
                },
                real => real,
            }
        }
        fn op<M2: Machine + ?Sized>(
            s: &mut Rewriter<'_, M2>,
            by_sym: &HashMap<SymId, usize>,
            cursors: &mut HashMap<SymId, usize>,
            freq: u64,
            nf: &mut Function,
            o: &Operand,
            prefer: Option<PhysReg>,
        ) -> Operand {
            match o {
                Operand::Loc(Loc::Sym(sym)) => {
                    match s.role_choice(by_sym, cursors, *sym, prefer, freq) {
                        OperandChoice::Reg(r) => Operand::real(r),
                        OperandChoice::Mem => {
                            let slot = s.slot(*sym, nf);
                            Operand::Slot(slot)
                        }
                    }
                }
                o => *o,
            }
        }

        match inst {
            Inst::LoadImm { dst: _, imm, width } => Inst::LoadImm {
                dst: Loc::Real(def_info.unwrap().1.unwrap()),
                imm: *imm,
                width: *width,
            },
            Inst::Copy { src, width, .. } => {
                let src = loc(
                    self,
                    by_sym,
                    &mut cursors,
                    freq,
                    *src,
                    def_info.and_then(|d| d.1),
                );
                Inst::Copy {
                    dst: Loc::Real(def_info.unwrap().1.unwrap()),
                    src,
                    width: *width,
                }
            }
            Inst::Load { addr, width, .. } => {
                let addr = self.rewrite_addr(addr, by_sym, &mut cursors, freq);
                Inst::Load {
                    dst: Loc::Real(def_info.unwrap().1.unwrap()),
                    addr,
                    width: *width,
                }
            }
            Inst::Store { addr, src, width } => {
                let addr = self.rewrite_addr(addr, by_sym, &mut cursors, freq);
                let src = op(self, by_sym, &mut cursors, freq, nf, src, None);
                Inst::Store {
                    addr,
                    src,
                    width: *width,
                }
            }
            Inst::Bin {
                op: bop,
                lhs,
                rhs,
                width,
                ..
            } => {
                let (dsym, dreg, combined) = def_info.unwrap();
                if combined {
                    // §5.2 combined memory use/def: dst and lhs share the
                    // slot; the lhs role's cursor still advances (no use
                    // variable is set — the combined variable covers it).
                    *cursors.entry(dsym).or_insert(0) += 1;
                    self.stats.mem_operand_cycles += (freq * sc.mem_combined_extra_cycles) as i64;
                    self.stats.code_bytes += sc.mem_combined_extra_bytes as i64;
                    let slot = self.slot(dsym, nf);
                    let rhs = op(self, by_sym, &mut cursors, freq, nf, rhs, None);
                    return Inst::Bin {
                        op: *bop,
                        dst: Dst::Slot(slot),
                        lhs: Operand::Slot(slot),
                        rhs,
                        width: *width,
                    };
                }
                let dreg = dreg.unwrap();
                let two_addr = self.machine.is_two_address(inst);
                let (mut lhs, mut rhs) = (*lhs, *rhs);
                let lhs_sym = match lhs {
                    Operand::Loc(Loc::Sym(s)) => Some(s),
                    _ => None,
                };
                let rhs_sym = match rhs {
                    Operand::Loc(Loc::Sym(s)) => Some(s),
                    _ => None,
                };
                if let Some(s) = lhs_sym.filter(|_| two_addr && lhs_sym == rhs_sym) {
                    // Same symbolic in both positions: either role's use
                    // of the definition register justifies the combined
                    // specifier (def ≤ useEnd_ρ1 + useEnd_ρ2).
                    let c0 = self.role_choice(by_sym, &mut cursors, s, Some(dreg), freq);
                    let c1 = self.role_choice(by_sym, &mut cursors, s, Some(dreg), freq);
                    let (l, r) = match (&c0, &c1) {
                        (OperandChoice::Reg(r0), _) if *r0 == dreg => (c0, c1),
                        (_, OperandChoice::Reg(r1)) if *r1 == dreg => (c1, c0),
                        _ => panic!("two-address: no role of {s} holds {dreg}"),
                    };
                    let to_op = |c: OperandChoice, me: &mut Self, nf: &mut Function| match c {
                        OperandChoice::Reg(r) => Operand::real(r),
                        OperandChoice::Mem => Operand::Slot(me.slot(s, nf)),
                    };
                    let rhs = to_op(r, self, nf);
                    return Inst::Bin {
                        op: *bop,
                        dst: Dst::Loc(Loc::Real(dreg)),
                        lhs: to_op(l, self, nf),
                        rhs,
                        width: *width,
                    };
                }
                if two_addr {
                    // Swap commutative operands when the rhs carries the
                    // definition register (§5.1: either source may be the
                    // combined specifier).
                    let lhs_can = lhs_sym.is_some_and(|s| self.role_holds(by_sym, s, 0, dreg));
                    if !lhs_can && bop.is_commutative() {
                        std::mem::swap(&mut lhs, &mut rhs);
                    }
                }
                let had_reg_lhs = matches!(lhs, Operand::Loc(_));
                let lhs = op(self, by_sym, &mut cursors, freq, nf, &lhs, Some(dreg));
                let rhs = op(self, by_sym, &mut cursors, freq, nf, &rhs, None);
                if two_addr && had_reg_lhs {
                    // With an immediate in the combined position there is
                    // no register to match (the §5.1 constraint is absent
                    // from the model in that case too).
                    assert_eq!(
                        lhs,
                        Operand::real(dreg),
                        "two-address: lhs must match the definition register"
                    );
                }
                Inst::Bin {
                    op: *bop,
                    dst: Dst::Loc(Loc::Real(dreg)),
                    lhs,
                    rhs,
                    width: *width,
                }
            }
            Inst::Un {
                op: uop,
                src,
                width,
                ..
            } => {
                let (dsym, dreg, combined) = def_info.unwrap();
                if combined {
                    *cursors.entry(dsym).or_insert(0) += 1;
                    self.stats.mem_operand_cycles += (freq * sc.mem_combined_extra_cycles) as i64;
                    self.stats.code_bytes += sc.mem_combined_extra_bytes as i64;
                    let slot = self.slot(dsym, nf);
                    return Inst::Un {
                        op: *uop,
                        dst: Dst::Slot(slot),
                        src: Operand::Slot(slot),
                        width: *width,
                    };
                }
                let dreg = dreg.unwrap();
                let src = op(self, by_sym, &mut cursors, freq, nf, src, Some(dreg));
                Inst::Un {
                    op: *uop,
                    dst: Dst::Loc(Loc::Real(dreg)),
                    src,
                    width: *width,
                }
            }
            Inst::Call {
                callee,
                args,
                width,
                ..
            } => {
                let args = args
                    .iter()
                    .map(|a| op(self, by_sym, &mut cursors, freq, nf, a, None))
                    .collect();
                Inst::Call {
                    callee: *callee,
                    ret: def_info.map(|d| Loc::Real(d.1.unwrap())),
                    args,
                    width: *width,
                }
            }
            Inst::Branch {
                cond,
                lhs,
                rhs,
                width,
                then_blk,
                else_blk,
            } => {
                let lhs = op(self, by_sym, &mut cursors, freq, nf, lhs, None);
                let rhs = op(self, by_sym, &mut cursors, freq, nf, rhs, None);
                Inst::Branch {
                    cond: *cond,
                    lhs,
                    rhs,
                    width: *width,
                    then_blk: *then_blk,
                    else_blk: *else_blk,
                }
            }
            Inst::Ret { val } => Inst::Ret {
                val: val
                    .as_ref()
                    .map(|v| op(self, by_sym, &mut cursors, freq, nf, v, None)),
            },
            Inst::Jump { .. } | Inst::SpillLoad { .. } | Inst::SpillStore { .. } => inst.clone(),
        }
    }

    /// True if the `cursor`-th role of `sym`'s event can use register `r`
    /// (without advancing the cursor).
    fn role_holds(
        &self,
        by_sym: &HashMap<SymId, usize>,
        sym: SymId,
        cursor: usize,
        r: PhysReg,
    ) -> bool {
        let ev = &self.built.events[by_sym[&sym]];
        let regs = self.regs(sym);
        let Some(rv) = ev.roles.get(cursor) else {
            return false;
        };
        if self.ov(rv.mem) {
            return false;
        }
        regs.iter()
            .position(|x| *x == r)
            .is_some_and(|i| self.ov(rv.use_r[i]))
    }

    fn rewrite_addr(
        &mut self,
        addr: &regalloc_ir::Address,
        by_sym: &HashMap<SymId, usize>,
        cursors: &mut HashMap<SymId, usize>,
        freq: u64,
    ) -> regalloc_ir::Address {
        use regalloc_ir::Address;
        match addr {
            Address::Global(g) => Address::Global(*g),
            Address::Indirect { base, index, disp } => {
                let base = base.map(|b| match b {
                    Loc::Sym(s) => match self.role_choice(by_sym, cursors, s, None, freq) {
                        OperandChoice::Reg(r) => Loc::Real(r),
                        OperandChoice::Mem => unreachable!("addresses never fold to memory"),
                    },
                    real => real,
                });
                let index = index.map(|(i, sc)| {
                    let l = match i {
                        Loc::Sym(s) => match self.role_choice(by_sym, cursors, s, None, freq) {
                            OperandChoice::Reg(r) => Loc::Real(r),
                            OperandChoice::Mem => unreachable!("addresses never fold to memory"),
                        },
                        real => real,
                    };
                    (l, sc)
                });
                Address::Indirect {
                    base,
                    index,
                    disp: *disp,
                }
            }
        }
    }
}

enum OperandChoice {
    Reg(PhysReg),
    Mem,
}
