//! Warm-start construction: a feasible variable assignment corresponding
//! to the spill-everything allocation.
//!
//! Branch-and-bound benefits enormously from starting with *some*
//! incumbent: it can prune against it immediately and always has a usable
//! answer when the time budget expires (the paper's Table 2 "solved"
//! column counts exactly the functions for which the solver produced an
//! allocation). This module mirrors [`fallback`](crate::fallback) in the
//! decision-variable domain: every symbolic lives in its slot (`xm = 1`
//! on every segment), each use is fed by a fresh reload into a scratch
//! register chosen exactly as the fallback chooses it, every definition
//! goes to a register and is stored back, and no copies or memory
//! operands are used.

use regalloc_ilp::VarId;
use regalloc_ir::{Function, PhysReg, SymId};
use regalloc_x86::Machine;

use crate::analysis::Analysis;
use crate::build::BuiltModel;
use crate::irregular::two_address;

/// Build the spill-everything assignment for `built`.
///
/// The result is guaranteed feasible for correctly-built models; the
/// solver re-validates it and silently ignores an infeasible warm start,
/// so a bug here degrades solution availability, not correctness.
pub fn spill_everything_assignment<M: Machine>(
    f: &Function,
    a: &Analysis,
    built: &BuiltModel,
    machine: &M,
) -> Vec<bool> {
    let mut v = vec![false; built.model.num_vars()];
    let set = |var: Option<VarId>, val: bool, v: &mut Vec<bool>| {
        if let Some(x) = var {
            v[x.index()] = val;
        }
    };

    // Every segment's slot holds the value; no register residence.
    for &xm in &built.seg_xm {
        v[xm.index()] = true;
    }

    for block in f.block_ids() {
        for group in &a.block_groups[block.index()] {
            match group.inst {
                None => {
                    // Entry joins: memory flows in from every predecessor.
                    for &ei in &group.events {
                        if let Some(j) = &built.events[ei].join {
                            if let Some(jm) = j.jm {
                                v[jm.index()] = true;
                            }
                        }
                    }
                }
                Some(ii) => {
                    let inst = &f.block(block).insts[ii];
                    // Choose scratch registers per use occurrence exactly
                    // like the fallback: reuse a symbolic's register when
                    // admitted, avoid overlap between distinct symbolics.
                    let mut taken: Vec<(SymId, PhysReg)> = Vec::new();
                    for &ei in &group.events {
                        let e = &a.events[ei];
                        let ev = &built.events[ei];
                        let regs = machine.regs_for_width(f.sym_width(e.sym));
                        let mut my_reg: Option<usize> = None;
                        for (ri, rv) in ev.roles.iter().enumerate() {
                            let role = e.roles[ri];
                            let c = machine.use_constraints(inst, role, f.sym_width(e.sym));
                            // Reuse if the previous pick is admitted.
                            let reuse = my_reg.filter(|&i| c.admits(regs[i]));
                            let i = reuse.unwrap_or_else(|| {
                                regs.iter()
                                    .position(|r| {
                                        c.admits(*r)
                                            && rv.use_r[regs.iter().position(|x| x == r).unwrap()]
                                                .is_some()
                                            && !taken.iter().any(|(ts, tr)| {
                                                *ts != e.sym && machine.aliases(*tr).contains(r)
                                            })
                                    })
                                    .expect("warm start: no admissible scratch register")
                            });
                            if reuse.is_none() {
                                taken.push((e.sym, regs[i]));
                                set(ev.load[i], true, &mut v);
                            }
                            my_reg = Some(i);
                            set(rv.use_r[i], true, &mut v);
                            set(rv.use_end[i], true, &mut v);
                        }
                    }
                    // Definitions: two-address reuses the combined source's
                    // register; otherwise the first admitted register.
                    for &ei in &group.events {
                        let e = &a.events[ei];
                        let ev = &built.events[ei];
                        if !e.defines || e.predef_def {
                            continue;
                        }
                        let di = if machine.is_two_address(inst) {
                            // The lhs (or commutative rhs) symbolic's
                            // chosen register: find its use-end that we set.
                            let (l, r) = two_address::two_addr_parts(inst);
                            let src = l.or(r);
                            src.and_then(|s| {
                                let sei = group
                                    .events
                                    .iter()
                                    .copied()
                                    .find(|&x| a.events[x].sym == s)?;
                                built.events[sei].roles.iter().find_map(|rv| {
                                    rv.use_end
                                        .iter()
                                        .position(|ue| ue.is_some_and(|u| v[u.index()]))
                                })
                            })
                        } else {
                            None
                        };
                        let di = di.unwrap_or_else(|| {
                            ev.def
                                .iter()
                                .position(Option::is_some)
                                .expect("warm start: no definition register")
                        });
                        if ev.def[di].is_some() {
                            set(ev.def[di], true, &mut v);
                        } else {
                            // Two-address source register not admitted for
                            // the def (cannot happen on provided machines).
                            let alt = ev.def.iter().position(Option::is_some).unwrap();
                            set(ev.def[alt], true, &mut v);
                        }
                        if e.gout.is_some() {
                            set(ev.store, true, &mut v);
                        }
                    }
                }
            }
        }
    }
    v
}
