//! Warm-start construction: a feasible variable assignment corresponding
//! to the spill-everything allocation.
//!
//! Branch-and-bound benefits enormously from starting with *some*
//! incumbent: it can prune against it immediately and always has a usable
//! answer when the time budget expires (the paper's Table 2 "solved"
//! column counts exactly the functions for which the solver produced an
//! allocation). This module mirrors [`fallback`](crate::fallback) in the
//! decision domain: every symbolic lives in its slot (`xm = 1` on every
//! segment), each use is fed by a fresh reload into a scratch register
//! chosen exactly as the fallback chooses it, every definition goes to a
//! register and is stored back, and no copies or memory operands are used.
//!
//! The construction happens in *symbolic coordinates*
//! ([`SymbolicSolution`]) and is then lowered onto the model's variable
//! space, which keeps it usable as a projection base for cross-function
//! warm starts. Both entry points return `None` instead of panicking when
//! the machine model admits no scratch or definition register for some
//! instruction shape: the solver simply runs without a warm start, so a
//! gap here degrades solution availability, not correctness.

use regalloc_ir::{Function, PhysReg, SymId};
use regalloc_x86::Machine;

use crate::analysis::Analysis;
use crate::build::BuiltModel;
use crate::irregular::two_address;
use crate::symbolic::{EventDecision, RoleDecision, SymbolicSolution};

/// Build the spill-everything allocation as a [`SymbolicSolution`] over
/// `built`'s event keys.
///
/// Returns `None` when no admissible scratch or definition register
/// exists for some event (a machine model gap); callers skip the warm
/// start in that case.
pub fn spill_everything_solution<M: Machine + ?Sized>(
    f: &Function,
    a: &Analysis,
    built: &BuiltModel,
    machine: &M,
) -> Option<SymbolicSolution> {
    let mut ds: Vec<EventDecision> = built
        .events
        .iter()
        .map(|ev| EventDecision {
            roles: vec![RoleDecision::default(); ev.roles.len()],
            ..EventDecision::default()
        })
        .collect();

    // Every segment's slot holds the value, recorded at the event whose
    // `gout` creates the segment (each segment has exactly one creator);
    // no register residence anywhere.
    for (ei, g) in built.event_gout.iter().enumerate() {
        if g.is_some() {
            ds[ei].out_mem = true;
        }
    }

    for block in f.block_ids() {
        for group in &a.block_groups[block.index()] {
            match group.inst {
                None => {
                    // Entry joins: memory flows in from every predecessor.
                    for &ei in &group.events {
                        if let Some(j) = &built.events[ei].join {
                            if j.jm.is_some() {
                                ds[ei].join_mem = true;
                            }
                        }
                    }
                }
                Some(ii) => {
                    let inst = &f.block(block).insts[ii];
                    // Choose scratch registers per use occurrence exactly
                    // like the fallback: reuse a symbolic's register when
                    // admitted, avoid overlap between distinct symbolics.
                    let mut taken: Vec<(SymId, PhysReg)> = Vec::new();
                    for &ei in &group.events {
                        let e = &a.events[ei];
                        let ev = &built.events[ei];
                        let regs = &built.event_regs[ei];
                        let mut my_reg: Option<usize> = None;
                        for (ri, rv) in ev.roles.iter().enumerate() {
                            let role = e.roles[ri];
                            let c = machine.use_constraints(inst, role, f.sym_width(e.sym));
                            // Reuse if the previous pick is admitted.
                            let reuse = my_reg.filter(|&i| c.admits(regs[i]));
                            let i = match reuse {
                                Some(i) => i,
                                None => (0..regs.len()).find(|&i| {
                                    c.admits(regs[i])
                                        && rv.use_r[i].is_some()
                                        && !taken.iter().any(|(ts, tr)| {
                                            *ts != e.sym && machine.aliases(*tr).contains(&regs[i])
                                        })
                                })?,
                            };
                            if reuse.is_none() {
                                taken.push((e.sym, regs[i]));
                                if ev.load[i].is_some() {
                                    ds[ei].loads.push(regs[i]);
                                }
                            }
                            my_reg = Some(i);
                            if rv.use_r[i].is_some() {
                                ds[ei].roles[ri].regs.push(regs[i]);
                            }
                            if rv.use_end[i].is_some() {
                                ds[ei].roles[ri].ends.push(regs[i]);
                            }
                        }
                    }
                    // Definitions: two-address reuses the combined source's
                    // register; otherwise the first admitted register.
                    for &ei in &group.events {
                        let e = &a.events[ei];
                        let ev = &built.events[ei];
                        if !e.defines || e.predef_def {
                            continue;
                        }
                        let regs = &built.event_regs[ei];
                        let di = if machine.is_two_address(inst) {
                            // The lhs (or commutative rhs) symbolic's chosen
                            // register: the use-end we recorded above.
                            let (l, r) = two_address::two_addr_parts(inst);
                            let src = l.or(r);
                            src.and_then(|s| {
                                let sei = group
                                    .events
                                    .iter()
                                    .copied()
                                    .find(|&x| a.events[x].sym == s)?;
                                ds[sei]
                                    .roles
                                    .iter()
                                    .find_map(|rd| rd.ends.first().copied())
                                    .and_then(|r| regs.iter().position(|x| *x == r))
                            })
                        } else {
                            None
                        };
                        let di = match di {
                            // Two-address source register not admitted for
                            // the def (cannot happen on provided machines):
                            // fall back to the first admitted register.
                            Some(i) if ev.def[i].is_some() => i,
                            _ => ev.def.iter().position(Option::is_some)?,
                        };
                        ds[ei].def = Some(regs[di]);
                        if e.gout.is_some() && ev.store.is_some() {
                            ds[ei].store = true;
                        }
                    }
                }
            }
        }
    }
    Some(SymbolicSolution::from_decisions(
        built.keys.iter().copied().zip(ds).collect(),
    ))
}

/// Build the spill-everything assignment for `built` as a dense decision
/// vector ([`spill_everything_solution`] lowered onto the model).
///
/// The result is guaranteed feasible for correctly-built models; the
/// solver re-validates it and silently ignores an infeasible warm start,
/// so a bug here degrades solution availability, not correctness.
pub fn spill_everything_assignment<M: Machine + ?Sized>(
    f: &Function,
    a: &Analysis,
    built: &BuiltModel,
    machine: &M,
) -> Option<Vec<bool>> {
    let sol = spill_everything_solution(f, a, built, machine)?;
    built.lower(&sol)
}
