//! End-to-end allocation checking by execution.
//!
//! The strongest correctness check available: run the original symbolic
//! function and the allocated function on the same inputs through the IR
//! interpreter — the allocated one on a bit-accurate machine register
//! file — and compare every observable: return value, the ordered trace
//! of memory stores, final global values and control-flow volume.
//!
//! A wrong register assignment, a missing spill reload, a clobbered
//! caller-saved value or a mishandled overlapping-register pair shows up
//! as a divergence. Parameter slots are excluded from the final-globals
//! comparison because §5.5 home-location coalescing legitimately reuses
//! them for spills (a parameter's home is caller-dead after return).

use regalloc_ir::{ExecOutcome, Function, Interp, InterpConfig, RegFile, SymRegFile};

/// Compare two outcomes, ignoring the final values of parameter slots.
fn outcomes_match(f: &Function, a: &ExecOutcome, b: &ExecOutcome) -> Result<(), String> {
    if a.status != b.status {
        return Err(format!("status {:?} vs {:?}", a.status, b.status));
    }
    if a.ret != b.ret {
        return Err(format!("return {:?} vs {:?}", a.ret, b.ret));
    }
    if a.trace_hash != b.trace_hash || a.stores != b.stores {
        return Err(format!(
            "store trace ({} stores, {:#x}) vs ({} stores, {:#x})",
            a.stores, a.trace_hash, b.stores, b.trace_hash
        ));
    }
    if a.blocks_executed != b.blocks_executed {
        return Err(format!(
            "control flow: {} vs {} blocks",
            a.blocks_executed, b.blocks_executed
        ));
    }
    for (gi, g) in f.globals().iter().enumerate() {
        if !g.is_param && a.globals[gi] != b.globals[gi] {
            return Err(format!(
                "global {} (\"{}\"): {} vs {}",
                gi, g.name, a.globals[gi], b.globals[gi]
            ));
        }
    }
    Ok(())
}

/// Run `orig` (symbolic) and `alloc` (allocated, executed on register file
/// `RF`) on `runs` pseudo-random argument vectors and compare outcomes.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn equivalent<RF: RegFile + Default>(
    orig: &Function,
    alloc: &Function,
    runs: usize,
    seed: u64,
) -> Result<(), String> {
    equivalent_with(orig, alloc, runs, seed, RF::default)
}

/// [`equivalent`] with an explicit register-file factory — the form used
/// by the target-generic pipeline, where the register file comes from
/// [`regalloc_machine::Machine::new_regfile`] rather than a type
/// parameter.
///
/// # Errors
///
/// Returns a description of the first divergence found.
pub fn equivalent_with<RF: RegFile>(
    orig: &Function,
    alloc: &Function,
    runs: usize,
    seed: u64,
    mut regfile: impl FnMut() -> RF,
) -> Result<(), String> {
    for run in 0..runs {
        let base = regalloc_ir::interp::mix64(seed ^ (run as u64) << 17);
        let nargs = orig.globals().iter().filter(|g| g.is_param).count();
        let args: Vec<u64> = (0..nargs)
            .map(|i| regalloc_ir::interp::mix64(base ^ i as u64) % 1000)
            .collect();
        let cfg = InterpConfig {
            seed: base,
            ..Default::default()
        };
        let o = Interp::new(orig, SymRegFile, cfg, &args).run();
        let a = Interp::new(alloc, regfile(), cfg, &args).run();
        outcomes_match(orig, &o, &a).map_err(|e| format!("run {run} (args {args:?}): {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::{BinOp, FunctionBuilder, Operand, Width};
    use regalloc_x86::X86RegFile;

    #[test]
    fn identical_functions_are_equivalent() {
        let mut b = FunctionBuilder::new("f");
        let p = b.new_param("p", Width::B32);
        let x = b.new_sym(Width::B32);
        let y = b.new_sym(Width::B32);
        b.load_global(x, p);
        b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(3));
        b.ret(Some(y));
        let f = b.finish();
        // Symbolic vs itself under the symbolic register file.
        assert!(equivalent::<SymRegFile>(&f, &f, 4, 1).is_ok());
        let _ = X86RegFile::default(); // the machine file is exercised end-to-end elsewhere
    }

    #[test]
    fn detects_wrong_constant() {
        let mut b = FunctionBuilder::new("f");
        let x = b.new_sym(Width::B32);
        b.load_imm(x, 1);
        b.ret(Some(x));
        let f = b.finish();
        let mut g = f.clone();
        g.block_mut(g.entry()).insts[0] = regalloc_ir::Inst::LoadImm {
            dst: regalloc_ir::Loc::Sym(x),
            imm: 2,
            width: Width::B32,
        };
        let err = equivalent::<SymRegFile>(&f, &g, 2, 7).unwrap_err();
        assert!(err.contains("return"), "{err}");
    }

    #[test]
    fn detects_extra_observable_store() {
        let mut b = FunctionBuilder::new("f");
        let g0 = b.new_global("G", Width::B32, 0);
        let x = b.new_sym(Width::B32);
        b.load_imm(x, 1);
        b.ret(Some(x));
        let f = b.finish();
        let mut g = f.clone();
        g.block_mut(g.entry()).insts.insert(
            1,
            regalloc_ir::Inst::Store {
                addr: regalloc_ir::Address::Global(g0),
                src: Operand::Imm(9),
                width: Width::B32,
            },
        );
        assert!(equivalent::<SymRegFile>(&f, &g, 1, 3).is_err());
    }
}
