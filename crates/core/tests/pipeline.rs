//! Fault-injection tests for the robust allocation pipeline: every
//! injected failure must yield a *validated* lower-rung allocation with
//! the structured reason code that caught it — never a process abort.

use std::time::Duration;

use regalloc_core::pipeline::BaselineAllocator;
use regalloc_core::{FaultPlan, ReasonCode, RobustAllocator, Rung, SpillStats};
use regalloc_ir::{verify_allocated, BinOp, Function, FunctionBuilder, Operand, Profile, Width};
use regalloc_x86::X86Machine;

fn sample() -> Function {
    let mut b = FunctionBuilder::new("sample");
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_global(x, p);
    b.load_imm(y, 3);
    b.bin(BinOp::Mul, z, Operand::sym(x), Operand::sym(y));
    b.bin(BinOp::Add, z, Operand::sym(z), Operand::sym(x));
    b.ret(Some(z));
    b.finish()
}

fn robust(m: &X86Machine) -> RobustAllocator<'_, X86Machine> {
    RobustAllocator::new(m)
}

#[test]
fn clean_run_lands_on_the_optimal_rung() {
    let m = X86Machine::pentium();
    let f = sample();
    let out = robust(&m).allocate(&f).unwrap();
    assert_eq!(out.report.rung, Rung::IpOptimal);
    assert!(
        out.report.demotions.is_empty(),
        "{:?}",
        out.report.demotions
    );
    assert!(out.report.solved() && out.report.solved_optimally());
    assert!(!out.report.degraded());
    verify_allocated(&out.func).unwrap();
}

#[test]
fn forced_timeout_demotes_to_warm_start_with_reason() {
    let m = X86Machine::pentium();
    let f = sample();
    let out = robust(&m)
        .with_faults(FaultPlan {
            force_timeout: true,
            ..FaultPlan::none()
        })
        .allocate(&f)
        .unwrap();
    assert_eq!(out.report.rung, Rung::WarmStart);
    assert!(
        out.report
            .demotions
            .iter()
            .any(|d| d.from == Rung::IpOptimal && d.reason == ReasonCode::SolverTimeout),
        "{:?}",
        out.report.demotions
    );
    assert!(!out.report.solved());
    verify_allocated(&out.func).unwrap();
}

#[test]
fn panic_in_build_is_isolated_and_reaches_spill_all() {
    let m = X86Machine::pentium();
    let f = sample();
    // No baseline injected: the ladder must fall through the unavailable
    // coloring rung to spill-everything.
    let out = robust(&m)
        .with_faults(FaultPlan {
            panic_in_build: true,
            ..FaultPlan::none()
        })
        .allocate(&f)
        .unwrap();
    assert_eq!(out.report.rung, Rung::SpillAll);
    for rung in [Rung::IpOptimal, Rung::IpIncumbent, Rung::WarmStart] {
        assert!(
            out.report
                .demotions
                .iter()
                .any(|d| d.from == rung && d.reason == ReasonCode::Panic),
            "missing panic demotion for {rung}: {:?}",
            out.report.demotions
        );
    }
    assert!(out
        .report
        .demotions
        .iter()
        .any(|d| d.from == Rung::Coloring && d.reason == ReasonCode::RungUnavailable));
    assert_eq!(out.report.num_constraints, 0, "model never built");
    verify_allocated(&out.func).unwrap();
}

#[test]
fn panic_in_rewrite_is_isolated() {
    let m = X86Machine::pentium();
    let f = sample();
    let out = robust(&m)
        .with_faults(FaultPlan {
            panic_in_rewrite: true,
            ..FaultPlan::none()
        })
        .allocate(&f)
        .unwrap();
    // Every solver-derived rung rewrites through the faulty path, so the
    // ladder must land below them.
    assert!(
        out.report.rung >= Rung::Coloring,
        "rung {}",
        out.report.rung
    );
    assert!(
        out.report
            .demotions
            .iter()
            .any(|d| d.reason == ReasonCode::Panic && d.detail.contains("rewrite panicked")),
        "{:?}",
        out.report.demotions
    );
    verify_allocated(&out.func).unwrap();
}

#[test]
fn corrupted_solution_is_caught_by_validation() {
    let m = X86Machine::pentium();
    let f = sample();
    let out = robust(&m)
        .with_faults(FaultPlan {
            corrupt_solution: Some(0xbad5eed),
            ..FaultPlan::none()
        })
        .allocate(&f)
        .unwrap();
    // The warm-start vector is not corrupted, so the ladder stops there;
    // the IP rung's bit-flipped solution must have been rejected either
    // by the guarded rewrite or by one of the validators.
    assert_eq!(out.report.rung, Rung::WarmStart);
    let ip_demotion = out
        .report
        .demotions
        .iter()
        .find(|d| d.from == Rung::IpOptimal || d.from == Rung::IpIncumbent)
        .expect("the corrupted IP candidate must record a demotion");
    assert!(
        matches!(
            ip_demotion.reason,
            ReasonCode::Panic | ReasonCode::ValidationFailed | ReasonCode::EquivalenceFailed
        ),
        "{ip_demotion:?}"
    );
    verify_allocated(&out.func).unwrap();
}

#[test]
fn zero_budget_still_emits_validated_code() {
    let m = X86Machine::pentium();
    let f = sample();
    let out = robust(&m).with_budget(Duration::ZERO).allocate(&f).unwrap();
    assert!(out.report.rung >= Rung::WarmStart);
    assert!(out.report.degraded());
    verify_allocated(&out.func).unwrap();
}

#[test]
fn seeded_fault_plans_are_deterministic() {
    for seed in 0..64u64 {
        assert_eq!(FaultPlan::seeded(seed), FaultPlan::seeded(seed));
    }
    // The generator covers both clean and faulty plans across seeds.
    assert!((0..64).any(|s| !FaultPlan::seeded(s).is_clean()));
    assert!((0..64).any(|s| FaultPlan::seeded(s).is_clean()));
}

/// A baseline that reports a structured failure.
struct FailingBaseline;
impl BaselineAllocator for FailingBaseline {
    fn allocate_baseline(
        &self,
        _f: &Function,
        _p: &Profile,
    ) -> Result<(Function, SpillStats), String> {
        Err("baseline declined".to_string())
    }
}

/// A baseline that panics outright.
struct PanickingBaseline;
impl BaselineAllocator for PanickingBaseline {
    fn allocate_baseline(
        &self,
        _f: &Function,
        _p: &Profile,
    ) -> Result<(Function, SpillStats), String> {
        panic!("baseline exploded");
    }
}

#[test]
fn failing_baseline_demotes_to_spill_all() {
    let m = X86Machine::pentium();
    let f = sample();
    let base = FailingBaseline;
    let out = robust(&m)
        .with_baseline(&base)
        .with_faults(FaultPlan {
            panic_in_build: true,
            ..FaultPlan::none()
        })
        .allocate(&f)
        .unwrap();
    assert_eq!(out.report.rung, Rung::SpillAll);
    assert!(out.report.demotions.iter().any(|d| d.from == Rung::Coloring
        && d.reason == ReasonCode::RungFailed
        && d.detail.contains("declined")));
    verify_allocated(&out.func).unwrap();
}

#[test]
fn panicking_baseline_is_isolated() {
    let m = X86Machine::pentium();
    let f = sample();
    let base = PanickingBaseline;
    let out = robust(&m)
        .with_baseline(&base)
        .with_faults(FaultPlan {
            panic_in_build: true,
            ..FaultPlan::none()
        })
        .allocate(&f)
        .unwrap();
    assert_eq!(out.report.rung, Rung::SpillAll);
    assert!(out
        .report
        .demotions
        .iter()
        .any(|d| d.from == Rung::Coloring && d.reason == ReasonCode::Panic));
    verify_allocated(&out.func).unwrap();
}

#[test]
fn every_fault_combination_survives() {
    // The full cross product of injected faults: the ladder must always
    // return validated code, never abort, and always record its rung.
    let m = X86Machine::pentium();
    let f = sample();
    for mask in 0..16u32 {
        let plan = FaultPlan {
            force_timeout: mask & 1 != 0,
            panic_in_build: mask & 2 != 0,
            panic_in_rewrite: mask & 4 != 0,
            corrupt_solution: (mask & 8 != 0).then_some(0xdead),
        };
        let out = robust(&m)
            .with_faults(plan)
            .allocate(&f)
            .unwrap_or_else(|e| panic!("plan {plan:?} failed: {e}"));
        verify_allocated(&out.func)
            .unwrap_or_else(|e| panic!("plan {plan:?} produced invalid code: {e:?}"));
        if !plan.is_clean() {
            assert!(out.report.degraded() || out.report.rung == Rung::IpOptimal);
        }
    }
}

#[test]
fn audit_verifies_optimal_claims_end_to_end() {
    let m = X86Machine::pentium();
    let f = sample();
    let out = robust(&m).with_audit(true).allocate(&f).unwrap();
    assert_eq!(
        out.report.rung,
        Rung::IpOptimal,
        "{:?}",
        out.report.demotions
    );
    let audit = out.report.audit.as_ref().expect("audit ran");
    assert_eq!(audit.verdict, regalloc_audit::Verdict::Verified);
    assert!(audit.leaves > 0);
    assert!(audit.diagnostics.is_empty());
    // The verified certificate rides along for cache persistence, and its
    // incumbent is the accepted solution.
    let cert = out.certificate.as_ref().expect("certificate retained");
    assert!(cert.incumbent.is_some());
    verify_allocated(&out.func).unwrap();
}

#[test]
fn audit_does_not_change_the_allocation() {
    let m = X86Machine::pentium();
    let f = sample();
    let plain = robust(&m).allocate(&f).unwrap();
    let audited = robust(&m).with_audit(true).allocate(&f).unwrap();
    assert_eq!(plain.report.rung, audited.report.rung);
    assert_eq!(plain.func, audited.func);
    assert_eq!(plain.stats.loads, audited.stats.loads);
    assert_eq!(plain.stats.stores, audited.stats.stores);
    assert!(plain.report.audit.is_none());
    assert!(plain.certificate.is_none());
}
