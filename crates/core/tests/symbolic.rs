//! Property tests of the portable symbolic-solution representation:
//! `lower ∘ lift` is the identity on feasible assignments, serialization
//! round-trips, self-projection reproduces the original vector, and
//! projecting onto a mutated or entirely foreign function either yields
//! a feasible incumbent or is cleanly rejected — never a panic.
//!
//! Functions are generated with a seeded local builder rather than the
//! `regalloc-workloads` suites (workloads depends on core, so core's
//! tests cannot depend on workloads).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use regalloc_core::build::BuiltModel;
use regalloc_core::warm::spill_everything_solution;
use regalloc_core::{analysis, build, CostModel, EventDecision, RoleDecision, SymbolicSolution};
use regalloc_ilp::{solve, SolverConfig, Status};
use regalloc_ir::{
    BinOp, Cfg, Cond, Function, FunctionBuilder, Liveness, LoopInfo, Operand, Profile, SymId, UnOp,
    Width,
};
use regalloc_x86::X86Machine;

/// Build the full model (plus its analysis) the way the allocator does.
fn model(f: &Function, m: &X86Machine) -> (analysis::Analysis, BuiltModel) {
    let cfg = Cfg::new(f);
    let loops = LoopInfo::new(f, &cfg);
    let profile = Profile::estimate(f, &cfg, &loops);
    let live = Liveness::new(f, &cfg);
    let a = analysis::analyze(f, &cfg, &live, m);
    let built = build::build_model(f, &cfg, &profile, &a, m, &CostModel::paper());
    (a, built)
}

/// A small random 32-bit function: a handful of symbolics, a parameter,
/// a run of random arithmetic, an optional diamond, a store and a return.
fn random_function(seed: u64) -> Function {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = FunctionBuilder::new("prop");
    let n = rng.gen_range(2..6usize);
    let syms: Vec<SymId> = (0..n).map(|_| b.new_sym(Width::B32)).collect();
    let p = b.new_param("p", Width::B32);
    b.load_global(syms[0], p);
    for &s in &syms[1..] {
        b.load_imm(s, rng.gen_range(1..50));
    }
    let ops = |b: &mut FunctionBuilder, rng: &mut SmallRng, count: usize| {
        for _ in 0..count {
            let d = syms[rng.gen_range(0..n)];
            let l = syms[rng.gen_range(0..n)];
            match rng.gen_range(0..4) {
                0 => b.bin(
                    BinOp::Add,
                    d,
                    Operand::sym(l),
                    Operand::Imm(rng.gen_range(1..20)),
                ),
                1 => b.bin(
                    BinOp::Mul,
                    d,
                    Operand::sym(l),
                    Operand::sym(syms[rng.gen_range(0..n)]),
                ),
                2 => b.un(UnOp::Neg, d, Operand::sym(l)),
                _ => b.bin(
                    BinOp::Sub,
                    d,
                    Operand::sym(l),
                    Operand::Imm(rng.gen_range(1..9)),
                ),
            }
        }
    };
    let k = rng.gen_range(2..8);
    ops(&mut b, &mut rng, k);
    if rng.gen_bool(0.5) {
        let then_blk = b.block();
        let else_blk = b.block();
        let join = b.block();
        b.branch(
            Cond::Lt,
            Operand::sym(syms[0]),
            Operand::Imm(10),
            Width::B32,
            then_blk,
            else_blk,
        );
        b.switch_to(then_blk);
        let k = rng.gen_range(1..4);
        ops(&mut b, &mut rng, k);
        b.jump(join);
        b.switch_to(else_blk);
        let k = rng.gen_range(1..4);
        ops(&mut b, &mut rng, k);
        b.jump(join);
        b.switch_to(join);
    }
    b.store_global(p, Operand::sym(syms[0]));
    b.ret(Some(syms[rng.gen_range(0..n)]));
    b.finish()
}

/// Change every non-zero `LoadImm` constant, leaving the shape intact —
/// the same mutation the driver's `--perturb` applies to whole suites.
fn mutate_immediates(f: &Function) -> Function {
    let mut out = f.clone();
    let blocks: Vec<_> = out.block_ids().collect();
    for bid in blocks {
        for inst in &mut out.block_mut(bid).insts {
            if let regalloc_ir::Inst::LoadImm { imm, .. } = inst {
                if *imm != 0 {
                    *imm = (*imm % 97) + 1;
                }
            }
        }
    }
    out
}

/// Feasible assignments worth testing: the spill-everything warm start
/// and, when the solver produces one, its own (optimal or incumbent)
/// solution.
fn feasible_assignments(f: &Function, m: &X86Machine, built: &BuiltModel) -> Vec<Vec<bool>> {
    let (a, _) = model(f, m);
    let mut out = Vec::new();
    let warm = spill_everything_solution(f, &a, built, m)
        .and_then(|s| built.lower(&s))
        .expect("x86 admits the spill-everything allocation");
    // Tight limits keep the whole property suite fast; an incumbent cut
    // off early is still feasible, which is all these tests need.
    let cfg = SolverConfig {
        time_limit: std::time::Duration::from_secs(1),
        lp_iter_limit: 10_000,
        node_limit: 300,
        max_rows: 6_000,
        ..SolverConfig::default()
    };
    let sol = solve(&built.model, &cfg, Some(&warm));
    if matches!(sol.status, Status::Optimal | Status::Feasible) {
        out.push(sol.values);
    }
    out.push(warm);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `lower(lift(v)) == v` for every feasible assignment, and the
    /// serialized text round-trips to the same symbolic solution.
    #[test]
    fn lift_lower_identity_and_serde_round_trip(seed in 0u64..10_000) {
        let m = X86Machine::pentium();
        let f = random_function(seed);
        let (_, built) = model(&f, &m);
        for v in feasible_assignments(&f, &m, &built) {
            prop_assert!(built.model.is_feasible(&v), "assignment under test is feasible");
            let sym = built.lift(&v);
            let lowered = built.lower(&sym);
            prop_assert_eq!(lowered.as_deref(), Some(v.as_slice()), "lower ∘ lift != id");

            let text = sym.serialize();
            let back = SymbolicSolution::deserialize(&text);
            prop_assert_eq!(back.as_ref(), Some(&sym), "serialize round-trip");
        }
    }

    /// Projecting a function's own lifted solution back onto its own
    /// model reproduces the original vector regardless of the base.
    #[test]
    fn self_projection_is_identity(seed in 0u64..10_000) {
        let m = X86Machine::pentium();
        let f = random_function(seed);
        let (_, built) = model(&f, &m);
        let all_false = vec![false; built.model.num_vars()];
        for v in feasible_assignments(&f, &m, &built) {
            let sym = built.lift(&v);
            prop_assert_eq!(&built.project(&sym, &all_false), &v);
        }
    }

    /// Projection onto a mutated copy (immediates changed, shape kept)
    /// maps every event and yields an accepted incumbent; projection
    /// onto an unrelated function never panics and is either feasible or
    /// cleanly gated out by the feasibility check.
    #[test]
    fn projection_is_total_and_gated(seed in 0u64..10_000) {
        let m = X86Machine::pentium();
        let f = random_function(seed);
        let (_, built) = model(&f, &m);
        let donor = built.lift(&feasible_assignments(&f, &m, &built).remove(0));

        // Same shape: the projection lands exactly where the donor was.
        let mutated = mutate_immediates(&f);
        let (ma, mbuilt) = model(&mutated, &m);
        let base = spill_everything_solution(&mutated, &ma, &mbuilt, &m)
            .and_then(|s| mbuilt.lower(&s))
            .expect("spill-everything base");
        let proj = mbuilt.project(&donor, &base);
        prop_assert_eq!(proj.len(), mbuilt.model.num_vars());
        prop_assert!(
            mbuilt.model.is_feasible(&proj),
            "an immediate-only mutation keeps the donor solution feasible"
        );

        // Foreign function: tolerance, not correctness, is the contract.
        let other = random_function(seed.wrapping_add(7_919));
        let (oa, obuilt) = model(&other, &m);
        let obase = spill_everything_solution(&other, &oa, &obuilt, &m)
            .and_then(|s| obuilt.lower(&s))
            .expect("spill-everything base");
        let oproj = obuilt.project(&donor, &obase);
        prop_assert_eq!(oproj.len(), obuilt.model.num_vars());
        // Either outcome is legal; the call must simply never panic and
        // the gate must be decidable.
        let _ = obuilt.model.is_feasible(&oproj);
    }

    /// The worst donor imaginable: every admissible register claimed for
    /// every action at every event. Any action list the target model
    /// does not carry at that event (empty `load`, shorter `def`, …)
    /// must reject the decision — never index out of bounds. This is the
    /// exact shape that crashed projection against a real suite cache
    /// before the bounds were checked.
    #[test]
    fn adversarial_donor_decisions_never_panic(seed in 0u64..10_000) {
        let m = X86Machine::pentium();
        let f = random_function(seed);
        let (a, built) = model(&f, &m);
        let decisions: Vec<_> = built
            .keys
            .iter()
            .enumerate()
            .map(|(ei, &k)| {
                let regs = built.event_regs[ei].clone();
                let role = RoleDecision {
                    regs: regs.clone(),
                    mem: true,
                    ends: regs.clone(),
                };
                let d = EventDecision {
                    join_regs: regs.clone(),
                    join_mem: true,
                    loads: regs.clone(),
                    remats: regs.clone(),
                    loads_post: regs.clone(),
                    remats_post: regs.clone(),
                    store: true,
                    def: regs.first().copied(),
                    combined: true,
                    copies: regs.clone(),
                    deletes: regs.clone(),
                    roles: vec![role; built.events[ei].roles.len()],
                    out_regs: regs.clone(),
                    out_mem: true,
                };
                (k, d)
            })
            .collect();
        let donor = SymbolicSolution::from_decisions(decisions);
        let base = spill_everything_solution(&f, &a, &built, &m)
            .and_then(|s| built.lower(&s))
            .expect("spill-everything base");
        // Same model, foreign model: totality is the whole contract.
        let proj = built.project(&donor, &base);
        prop_assert_eq!(proj.len(), built.model.num_vars());
        let _ = built.model.is_feasible(&proj);
        let _ = built.lower(&donor);
        let other = random_function(seed.wrapping_add(31));
        let (_, obuilt) = model(&other, &m);
        let oproj = obuilt.project(&donor, &vec![false; obuilt.model.num_vars()]);
        prop_assert_eq!(oproj.len(), obuilt.model.num_vars());
        let _ = obuilt.model.is_feasible(&oproj);
    }
}
