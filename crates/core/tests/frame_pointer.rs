//! Tests of the EBP-allocatable configuration (§5.4.2): the frame pointer
//! joins the pool and its bare `[EBP]` addressing-mode penalty enters the
//! model.

use regalloc_core::{check, IpAllocator};
use regalloc_ir::{verify_allocated, Address, BinOp, FunctionBuilder, Loc, Operand, Width};
use regalloc_x86::{regs, Machine, X86Machine, X86RegFile};

#[test]
fn seventh_register_absorbs_pressure() {
    // Seven simultaneously-live values: six registers must spill, seven
    // need not.
    let build = || {
        let mut b = FunctionBuilder::new("seven");
        let syms: Vec<_> = (0..7).map(|_| b.new_sym(Width::B32)).collect();
        for (i, &s) in syms.iter().enumerate() {
            b.load_imm(s, i as i64 * 3 + 1);
        }
        let mut acc = b.new_sym(Width::B32);
        b.load_imm(acc, 0);
        for &s in &syms {
            let t = b.new_sym(Width::B32);
            b.bin(BinOp::Add, t, Operand::sym(acc), Operand::sym(s));
            acc = t;
        }
        b.ret(Some(acc));
        b.finish()
    };
    let f = build();
    let m7 = X86Machine::with_frame_pointer_free();
    let out = IpAllocator::new(&m7).allocate(&f).unwrap();
    verify_allocated(&out.func).unwrap();
    check::equivalent::<X86RegFile>(&f, &out.func, 4, 11).unwrap();
    if out.solved_optimally {
        assert_eq!(
            out.stats.loads + out.stats.stores,
            0,
            "7+accumulator fits in 7 registers with ends: {:?}",
            out.stats
        );
    }
    // EBP must actually be usable.
    assert!(m7.regs_for_width(Width::B32).contains(&regs::EBP));
}

#[test]
fn bare_ebp_addressing_penalty_steers_base_choice() {
    // A hot bare `[base]` dereference: with B = 1000 the one-byte §5.4.2
    // penalty makes EBP the *last* choice for the base register.
    let mut b = FunctionBuilder::new("ebp");
    let base = b.new_sym(Width::B32);
    let v = b.new_sym(Width::B32);
    b.load_imm(base, 0x4000);
    b.load(
        v,
        Address::Indirect {
            base: Some(Loc::Sym(base)),
            index: None,
            disp: 0, // the penalised, displacement-free form
        },
    );
    b.ret(Some(v));
    let f = b.finish();
    let m7 = X86Machine::with_frame_pointer_free();
    let out = IpAllocator::new(&m7).allocate(&f).unwrap();
    assert!(out.solved_optimally);
    check::equivalent::<X86RegFile>(&f, &out.func, 4, 12).unwrap();
    let base_reg = out
        .func
        .insts()
        .find_map(|(_, _, i)| match i {
            regalloc_ir::Inst::Load {
                addr:
                    Address::Indirect {
                        base: Some(Loc::Real(r)),
                        ..
                    },
                ..
            } => Some(*r),
            _ => None,
        })
        .expect("load remains");
    assert_ne!(base_reg, regs::EBP, "§5.4.2: [EBP] costs an extra byte");
}

#[test]
fn esp_never_chosen_as_scaled_index() {
    // With ESP allocatable, the §5.4.3 exclusion keeps it out of scaled
    // index positions even under pressure.
    let mut b = FunctionBuilder::new("esp");
    let idx = b.new_sym(Width::B32);
    let v = b.new_sym(Width::B32);
    b.load_imm(idx, 4);
    b.load(
        v,
        Address::Indirect {
            base: None,
            index: Some((Loc::Sym(idx), regalloc_ir::Scale::S4)),
            disp: 0x100,
        },
    );
    b.ret(Some(v));
    let f = b.finish();
    let m8 = X86Machine::with_esp();
    let out = IpAllocator::new(&m8).allocate(&f).unwrap();
    check::equivalent::<X86RegFile>(&f, &out.func, 4, 13).unwrap();
    let idx_reg = out
        .func
        .insts()
        .find_map(|(_, _, i)| match i {
            regalloc_ir::Inst::Load {
                addr:
                    Address::Indirect {
                        index: Some((Loc::Real(r), _)),
                        ..
                    },
                ..
            } => Some(*r),
            _ => None,
        })
        .expect("load remains");
    assert_ne!(idx_reg, regs::ESP, "§5.4.3 exclusion");
}
