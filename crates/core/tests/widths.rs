//! Mixed-width end-to-end allocations: 16-bit values engage the SI/DI and
//! AX–DX classes and the §5.3 overlap sets.

use regalloc_core::{check, IpAllocator};
use regalloc_ir::{verify_allocated, BinOp, FunctionBuilder, Operand, UnOp, Width};
use regalloc_x86::{X86Machine, X86RegFile};

#[test]
fn sixteen_bit_arithmetic() {
    let mut b = FunctionBuilder::new("w16");
    let a = b.new_sym(Width::B16);
    let c = b.new_sym(Width::B16);
    let d = b.new_sym(Width::B16);
    let r32 = b.new_sym(Width::B32);
    b.load_imm(a, 0x7000);
    b.load_imm(c, 0x2000);
    b.bin(BinOp::Add, d, Operand::sym(a), Operand::sym(c)); // 0x9000
    b.load_imm(r32, 1);
    b.ret(Some(r32));
    let f = b.finish();
    let m = X86Machine::pentium();
    let out = IpAllocator::new(&m).allocate(&f).unwrap();
    verify_allocated(&out.func).unwrap();
    check::equivalent::<X86RegFile>(&f, &out.func, 6, 21).unwrap();
    assert!(out.solved_optimally);
}

#[test]
fn mixed_widths_share_families_without_conflict() {
    // A 16-bit value in AX and an 8-bit value may not share the A family;
    // the solver must distribute them. Six 16-bit + four 8-bit values is
    // feasible only with careful packing.
    let mut b = FunctionBuilder::new("mix");
    let w16: Vec<_> = (0..4).map(|_| b.new_sym(Width::B16)).collect();
    let w8: Vec<_> = (0..4).map(|_| b.new_sym(Width::B8)).collect();
    for (i, &s) in w16.iter().enumerate() {
        b.load_imm(s, 100 * (i as i64 + 1));
    }
    for (i, &s) in w8.iter().enumerate() {
        b.load_imm(s, 10 * (i as i64 + 1));
    }
    let mut acc16 = b.new_sym(Width::B16);
    b.load_imm(acc16, 0);
    for &s in &w16 {
        let t = b.new_sym(Width::B16);
        b.bin(BinOp::Add, t, Operand::sym(acc16), Operand::sym(s));
        acc16 = t;
    }
    let mut acc8 = b.new_sym(Width::B8);
    b.load_imm(acc8, 0);
    for &s in &w8 {
        let t = b.new_sym(Width::B8);
        b.bin(BinOp::Xor, t, Operand::sym(acc8), Operand::sym(s));
        acc8 = t;
    }
    let out8 = b.new_sym(Width::B8);
    b.un(UnOp::Not, out8, Operand::sym(acc8));
    let r = b.new_sym(Width::B32);
    b.load_imm(r, 7);
    b.ret(Some(r));
    let f = b.finish();
    let m = X86Machine::pentium();
    let out = IpAllocator::new(&m).allocate(&f).unwrap();
    verify_allocated(&out.func).unwrap();
    check::equivalent::<X86RegFile>(&f, &out.func, 6, 22).unwrap();
    assert!(out.solved, "mixed-width packing is feasible");
}

#[test]
fn shift_count_for_narrow_widths_uses_cl_family() {
    let mut b = FunctionBuilder::new("shl16");
    let x = b.new_sym(Width::B16);
    let c = b.new_sym(Width::B16);
    let y = b.new_sym(Width::B16);
    let r = b.new_sym(Width::B32);
    b.load_imm(x, 3);
    b.load_imm(c, 4);
    b.bin(BinOp::Shl, y, Operand::sym(x), Operand::sym(c)); // 48
    b.load_imm(r, 1);
    b.ret(Some(r));
    let f = b.finish();
    let m = X86Machine::pentium();
    let out = IpAllocator::new(&m).allocate(&f).unwrap();
    check::equivalent::<X86RegFile>(&f, &out.func, 6, 23).unwrap();
    let count = out
        .func
        .insts()
        .find_map(|(_, _, i)| match i {
            regalloc_ir::Inst::Bin {
                op: BinOp::Shl,
                rhs: Operand::Loc(regalloc_ir::Loc::Real(rr)),
                ..
            } => Some(*rr),
            _ => None,
        })
        .expect("shift remains");
    assert_eq!(count, regalloc_x86::regs::CX, "16-bit counts use CX");
}
