//! White-box tests of the constructed integer program: the §5 extensions
//! must be visible in the model's structure, not just its solutions.

use regalloc_core::IpAllocator;
use regalloc_ir::{BinOp, Dst, Function, FunctionBuilder, Inst, Operand, UnOp, Width};
use regalloc_x86::{RiscMachine, X86Machine};

fn x86_model(f: &Function) -> regalloc_core::build::BuiltModel {
    IpAllocator::new(&X86Machine::pentium())
        .build_only(f)
        .expect("attempted")
}

#[test]
fn copy_insertion_variables_only_at_two_address_sources() {
    // §5.1: copy variables exist for the sources of two-address
    // instructions, not for, say, branch operands.
    let mut b = FunctionBuilder::new("m1");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_imm(x, 1);
    b.load_imm(y, 2);
    b.bin(BinOp::Add, z, Operand::sym(x), Operand::sym(y));
    b.ret(Some(z));
    let f = b.finish();
    let built = x86_model(&f);
    let with_copy: usize = built
        .events
        .iter()
        .filter(|ev| ev.copy_to.iter().any(Option::is_some))
        .count();
    // Exactly the two sources of the add.
    assert_eq!(with_copy, 2, "copy-insertion events");
}

#[test]
fn combined_memory_variable_requires_rmw_shape_and_machine_support() {
    // §5.2: S = S + k (combinable) vs z = x * y (imul has no m,r form).
    let mk = |op, same: bool| {
        let mut b = FunctionBuilder::new("m2");
        let p = b.new_param("p", Width::B32);
        let x = b.new_sym(Width::B32);
        let y = b.new_sym(Width::B32);
        b.load_global(x, p);
        if same {
            b.push(Inst::Bin {
                op,
                dst: Dst::sym(x),
                lhs: Operand::sym(x),
                rhs: Operand::Imm(3),
                width: Width::B32,
            });
            b.ret(Some(x));
        } else {
            b.bin(op, y, Operand::sym(x), Operand::Imm(3));
            b.ret(Some(y));
        }
        b.finish()
    };
    let has_combined = |f: &Function| x86_model(f).events.iter().any(|ev| ev.combined.is_some());
    assert!(has_combined(&mk(BinOp::Add, true)), "add m, imm exists");
    assert!(!has_combined(&mk(BinOp::Add, false)), "needs dst == lhs");
    assert!(
        !has_combined(&mk(BinOp::Mul, true)),
        "imul m, r does not exist"
    );
}

#[test]
fn risc_model_has_no_two_address_machinery() {
    let mut b = FunctionBuilder::new("m3");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_imm(x, 1);
    b.load_imm(y, 2);
    b.bin(BinOp::Add, z, Operand::sym(x), Operand::sym(y));
    b.ret(Some(z));
    let f = b.finish();
    let built = IpAllocator::new(&RiscMachine::new())
        .build_only(&f)
        .unwrap();
    assert!(
        built
            .events
            .iter()
            .all(|ev| ev.copy_to.iter().all(Option::is_none)),
        "three-address machines need no §5.1 copies"
    );
    assert!(built.events.iter().all(|ev| ev.combined.is_none()));
}

#[test]
fn predefined_memory_fixes_registers_off() {
    // §5.5: after the deleted defining load, the value's register
    // residence variables are fixed to zero.
    let mut b = FunctionBuilder::new("m4");
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    b.load_global(x, p);
    b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(1));
    b.ret(Some(y));
    let f = b.finish();
    let built = x86_model(&f);
    let fixed_regs = (0..built.model.num_vars())
        .filter(|j| built.model.fixed(regalloc_ilp::VarId(*j as u32)) == Some(false))
        .count();
    assert!(fixed_regs >= 6, "post-definition residence is pinned off");
}

#[test]
fn remat_variables_only_for_constant_definitions() {
    let mut b = FunctionBuilder::new("m5");
    let k = b.new_sym(Width::B32); // constant: rematerialisable
    let v = b.new_sym(Width::B32); // computed: not
    let z = b.new_sym(Width::B32);
    b.load_imm(k, 7);
    b.un(UnOp::Neg, v, Operand::sym(k));
    b.bin(BinOp::Add, z, Operand::sym(v), Operand::sym(k));
    b.ret(Some(z));
    let f = b.finish();
    let built = x86_model(&f);
    let any_remat = built
        .events
        .iter()
        .any(|ev| ev.remat.iter().any(Option::is_some));
    assert!(any_remat, "the constant gets rematerialisation variables");
}

#[test]
fn must_exist_rows_strengthen_the_relaxation() {
    // Non-rematerialisable values get a Σ residence ≥ 1 row per segment;
    // an all-constant function gets none. Compare row counts per segment.
    let mut b1 = FunctionBuilder::new("m6a");
    let p = b1.new_param("p", Width::B32);
    let x = b1.new_sym(Width::B32);
    let y = b1.new_sym(Width::B32);
    b1.load_global(x, p); // predefined → non-remat
    b1.bin(BinOp::Add, y, Operand::sym(x), Operand::sym(x));
    b1.ret(Some(y));
    let f1 = b1.finish();
    let m1 = x86_model(&f1);

    let mut b2 = FunctionBuilder::new("m6b");
    let x = b2.new_sym(Width::B32);
    let y = b2.new_sym(Width::B32);
    b2.load_imm(x, 4); // rematerialisable
    b2.bin(BinOp::Add, y, Operand::sym(x), Operand::sym(x));
    b2.ret(Some(y));
    let f2 = b2.finish();
    let m2 = x86_model(&f2);

    // Same instruction count, but the first model carries must-exist rows.
    assert!(m1.model.num_rows() > 0 && m2.model.num_rows() > 0);
    assert!(
        m1.model.num_rows() != m2.model.num_rows(),
        "remat-ability changes the row structure"
    );
}

#[test]
fn constraint_count_scales_with_register_file() {
    // §6: more registers → more variables and rows for the same function.
    let mut b = FunctionBuilder::new("m7");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    b.load_imm(x, 1);
    b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(2));
    b.ret(Some(y));
    let f = b.finish();
    let bx = x86_model(&f);
    let br = IpAllocator::new(&RiscMachine::new())
        .build_only(&f)
        .unwrap();
    assert!(br.model.num_vars() > 2 * bx.model.num_vars());
    assert!(br.model.num_rows() > bx.model.num_rows());
}

#[test]
fn integral_costs_throughout() {
    // The §4 cost model plus scaling must keep every cost integral (the
    // solver's bound rounding depends on it).
    let mut b = FunctionBuilder::new("m8");
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    b.load_global(x, p);
    b.bin(BinOp::Shl, y, Operand::sym(x), Operand::Imm(2));
    b.ret(Some(y));
    let f = b.finish();
    let built = x86_model(&f);
    assert!(built.model.has_integral_costs());
}
