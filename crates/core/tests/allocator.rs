//! End-to-end tests of the IP allocator: every function is allocated,
//! structurally verified, and executed against its symbolic original on
//! multiple inputs through the bit-accurate x86 register file.

use regalloc_core::{check, fallback, AllocError, AllocOutcome, CostModel, IpAllocator};
use regalloc_ir::{
    verify_allocated, Address, BinOp, Cond, Function, FunctionBuilder, Loc, Operand, Scale, UnOp,
    Width,
};
use regalloc_x86::{RiscMachine, RiscRegFile, X86Machine, X86RegFile};

fn alloc_x86(f: &Function) -> AllocOutcome {
    let m = X86Machine::pentium();
    let out = IpAllocator::new(&m).allocate(f).expect("attempted");
    verify_allocated(&out.func).unwrap_or_else(|e| panic!("verify: {e:?}\n{}", out.func));
    regalloc_x86::verify_machine(&m, &out.func)
        .unwrap_or_else(|e| panic!("machine verify: {e:?}\n{}", out.func));
    check::equivalent::<X86RegFile>(f, &out.func, 6, 0xfeed)
        .unwrap_or_else(|e| panic!("equivalence: {e}\noriginal:\n{f}\nallocated:\n{}", out.func));
    out
}

fn alloc_risc(f: &Function) -> AllocOutcome {
    let m = RiscMachine::new();
    let out = IpAllocator::new(&m).allocate(f).expect("attempted");
    verify_allocated(&out.func).unwrap_or_else(|e| panic!("verify: {e:?}\n{}", out.func));
    check::equivalent::<RiscRegFile>(f, &out.func, 6, 0xfeed)
        .unwrap_or_else(|e| panic!("equivalence: {e}\noriginal:\n{f}\nallocated:\n{}", out.func));
    out
}

#[test]
fn straightline_no_spills_needed() {
    let mut b = FunctionBuilder::new("simple");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_imm(x, 6);
    b.load_imm(y, 7);
    b.bin(BinOp::Mul, z, Operand::sym(x), Operand::sym(y));
    b.ret(Some(z));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    assert_eq!(out.stats.loads, 0);
    assert_eq!(out.stats.stores, 0);
    assert_eq!(out.stats.total_insts(), 0, "6 registers suffice: no spills");
}

#[test]
fn two_address_constraint_is_respected() {
    // z = x + y with x live afterwards: the combined specifier must pick
    // y's register or insert a copy — never silently clobber x.
    let mut b = FunctionBuilder::new("twoaddr");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    let w = b.new_sym(Width::B32);
    b.load_imm(x, 100);
    b.load_imm(y, 23);
    b.bin(BinOp::Add, z, Operand::sym(x), Operand::sym(y));
    // x still live: use it again.
    b.bin(BinOp::Sub, w, Operand::sym(z), Operand::sym(x));
    b.ret(Some(w)); // (100+23) - 100 == 23
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved);
    // The two-address form must hold in the rewritten code.
    for (_, _, inst) in out.func.insts() {
        if let regalloc_ir::Inst::Bin { dst, lhs, .. } = inst {
            if let (regalloc_ir::Dst::Loc(Loc::Real(d)), Operand::Loc(Loc::Real(l))) = (dst, lhs) {
                assert_eq!(d, l, "x86 ALU must be two-address: {inst}");
            }
        }
    }
}

#[test]
fn commutative_swap_avoids_copy() {
    // z = x + y where y dies and x lives on: allocating z to y's register
    // (via the commutative swap) avoids any copy.
    let mut b = FunctionBuilder::new("swap");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    let w = b.new_sym(Width::B32);
    b.load_imm(x, 5);
    b.load_imm(y, 9);
    b.bin(BinOp::Add, z, Operand::sym(x), Operand::sym(y)); // y dies
    b.bin(BinOp::Add, w, Operand::sym(z), Operand::sym(x)); // x dies
    b.ret(Some(w));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    assert_eq!(out.stats.copies, 0, "swap makes the copy unnecessary");
    assert_eq!(out.stats.total_insts(), 0);
}

#[test]
fn non_commutative_with_live_lhs_inserts_copy() {
    // w = x - y with x used afterwards: x cannot end at the subtract, so
    // the allocator must pay for a copy (§5.1) — and nothing else.
    let mut b = FunctionBuilder::new("subcopy");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let w = b.new_sym(Width::B32);
    let v = b.new_sym(Width::B32);
    b.load_imm(x, 50);
    b.load_imm(y, 8);
    b.bin(BinOp::Sub, w, Operand::sym(x), Operand::sym(y));
    b.bin(BinOp::Add, v, Operand::sym(w), Operand::sym(x));
    b.ret(Some(v)); // (50-8) + 50 == 92
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    assert_eq!(out.stats.copies, 1, "one §5.1 copy insertion expected");
    assert_eq!(out.stats.loads + out.stats.stores, 0);
}

#[test]
fn copy_deletion() {
    // An input copy whose source dies at the copy is deleted by assigning
    // both symbolics the same register.
    let mut b = FunctionBuilder::new("coalesce");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_imm(x, 11);
    b.copy(y, x); // x dies here: deletable
    b.bin(BinOp::Add, z, Operand::sym(y), Operand::Imm(1));
    b.ret(Some(z));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    assert_eq!(out.stats.copies, -1, "the input copy is deleted");
    let copies_left = out
        .func
        .insts()
        .filter(|(_, _, i)| matches!(i, regalloc_ir::Inst::Copy { .. }))
        .count();
    assert_eq!(copies_left, 0);
}

#[test]
fn spills_under_pressure() {
    // Nine simultaneously-live 32-bit values cannot fit in six registers.
    let mut b = FunctionBuilder::new("pressure");
    let syms: Vec<_> = (0..9).map(|_| b.new_sym(Width::B32)).collect();
    for (i, &s) in syms.iter().enumerate() {
        b.load_imm(s, i as i64 + 1);
    }
    // Sum them up pairwise so all stay live until used.
    let mut acc = b.new_sym(Width::B32);
    b.load_imm(acc, 0);
    for &s in &syms {
        let t = b.new_sym(Width::B32);
        b.bin(BinOp::Add, t, Operand::sym(acc), Operand::sym(s));
        acc = t;
    }
    b.ret(Some(acc));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved);
    assert!(
        out.stats.total_insts() > 0,
        "pressure must force spill code or rematerialisation"
    );
}

#[test]
fn rematerialisation_beats_reload() {
    // A constant spilled across high pressure should be rematerialised
    // (1 cycle + 3 bytes at the use) rather than stored + loaded.
    let mut b = FunctionBuilder::new("remat");
    let k = b.new_sym(Width::B32);
    b.load_imm(k, 777);
    let syms: Vec<_> = (0..7).map(|_| b.new_sym(Width::B32)).collect();
    for (i, &s) in syms.iter().enumerate() {
        b.load_imm(s, i as i64);
    }
    let mut acc = b.new_sym(Width::B32);
    b.load_imm(acc, 0);
    for &s in &syms {
        let t = b.new_sym(Width::B32);
        b.bin(BinOp::Add, t, Operand::sym(acc), Operand::sym(s));
        acc = t;
    }
    let r = b.new_sym(Width::B32);
    b.bin(BinOp::Add, r, Operand::sym(acc), Operand::sym(k));
    b.ret(Some(r));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved);
    assert_eq!(out.stats.stores, 0, "a constant never needs a store");
    assert!(out.stats.remats > 0 || out.stats.total_insts() == 0);
}

#[test]
fn call_forces_callee_saved_or_spill() {
    let mut b = FunctionBuilder::new("call");
    let x = b.new_sym(Width::B32);
    let r = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_imm(x, 41);
    b.call(7, Some(r), vec![Operand::Imm(1)]);
    b.bin(BinOp::Add, z, Operand::sym(r), Operand::sym(x));
    b.ret(Some(z));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    // x survives in a callee-saved register at zero cost.
    assert_eq!(out.stats.total_insts(), 0);
}

#[test]
fn return_value_lands_in_eax() {
    let mut b = FunctionBuilder::new("reteax");
    let x = b.new_sym(Width::B32);
    b.load_imm(x, 3);
    b.ret(Some(x));
    let f = b.finish();
    let out = alloc_x86(&f);
    let last = out.func.block(out.func.entry()).insts.last().unwrap();
    match last {
        regalloc_ir::Inst::Ret {
            val: Some(Operand::Loc(Loc::Real(r))),
        } => {
            assert_eq!(*r, regalloc_x86::regs::EAX, "return pinned to EAX");
        }
        other => panic!("unexpected terminator {other}"),
    }
}

#[test]
fn shift_count_lands_in_ecx() {
    let mut b = FunctionBuilder::new("shift");
    let x = b.new_sym(Width::B32);
    let c = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    b.load_imm(x, 1);
    b.load_imm(c, 4);
    b.bin(BinOp::Shl, y, Operand::sym(x), Operand::sym(c));
    b.ret(Some(y)); // 1 << 4 == 16
    let f = b.finish();
    let out = alloc_x86(&f);
    let shl = out
        .func
        .insts()
        .find_map(|(_, _, i)| match i {
            regalloc_ir::Inst::Bin {
                op: BinOp::Shl,
                rhs: Operand::Loc(Loc::Real(r)),
                ..
            } => Some(*r),
            _ => None,
        })
        .expect("shift with register count");
    assert_eq!(shl, regalloc_x86::regs::ECX, "count implicitly uses ECX");
}

#[test]
fn loop_allocation() {
    // Classic loop: i and sum in registers throughout, no spill code.
    let mut b = FunctionBuilder::new("loop");
    let i = b.new_sym(Width::B32);
    let sum = b.new_sym(Width::B32);
    let head = b.block();
    let body = b.block();
    let exit = b.block();
    b.load_imm(i, 0);
    b.load_imm(sum, 0);
    b.jump(head);
    b.switch_to(head);
    b.branch(
        Cond::Lt,
        Operand::sym(i),
        Operand::Imm(10),
        Width::B32,
        body,
        exit,
    );
    b.switch_to(body);
    b.bin(BinOp::Add, sum, Operand::sym(sum), Operand::sym(i));
    b.bin(BinOp::Add, i, Operand::sym(i), Operand::Imm(1));
    b.jump(head);
    b.switch_to(exit);
    b.ret(Some(sum)); // 45
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    assert_eq!(
        out.stats.total_insts(),
        0,
        "no spills in a two-variable loop"
    );
}

#[test]
fn predefined_memory_param_load_is_deleted() {
    let mut b = FunctionBuilder::new("predef");
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    b.load_global(x, p);
    b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(1));
    b.ret(Some(y));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    // §5.5: the defining load is deleted; the value is reloaded (or used
    // as a memory operand) at its use instead.
    let global_loads = out
        .func
        .insts()
        .filter(|(_, _, i)| {
            matches!(
                i,
                regalloc_ir::Inst::Load {
                    addr: Address::Global(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(global_loads, 0, "original param load must be gone");
    // Its slot is coalesced with the parameter's home location.
    assert!(out.func.slots().iter().any(|s| s.home == Some(p)));
}

#[test]
fn memory_operand_used_under_pressure() {
    // A §5.2 separate memory operand: a predefined param used once as the
    // second source can be folded instead of loaded.
    let mut b = FunctionBuilder::new("memop");
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_global(x, p);
    b.load_imm(y, 5);
    b.bin(BinOp::Add, z, Operand::sym(y), Operand::sym(x));
    b.ret(Some(z));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    // Either a fold (slot operand) or a reload happened; the model picks
    // the cheaper. Verify the function still computes p + 5.
    let has_slot_operand = out.func.insts().any(|(_, _, i)| {
        matches!(
            i,
            regalloc_ir::Inst::Bin {
                rhs: Operand::Slot(_),
                ..
            }
        )
    });
    let has_spill_load = out.func.insts().any(|(_, _, i)| i.is_spill());
    assert!(
        has_slot_operand || has_spill_load,
        "the param value must come from memory somehow:\n{}",
        out.func
    );
}

#[test]
fn combined_memory_use_def() {
    // x = x + 1 where x is a predefined memory param used under register
    // pressure: the combined read-modify-write form (§5.2) is available.
    // At minimum the allocation must stay correct.
    let mut b = FunctionBuilder::new("rmw");
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    b.load_global(x, p);
    b.bin(BinOp::Add, x, Operand::sym(x), Operand::Imm(1));
    b.ret(Some(x));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
}

#[test]
fn overlapping_widths_8_and_32() {
    // An 8-bit and a 32-bit value interleaved: AL conflicts with EAX but
    // BL does not conflict with EAX.
    let mut b = FunctionBuilder::new("widths");
    let a8 = b.new_sym(Width::B8);
    let c8 = b.new_sym(Width::B8);
    let x32 = b.new_sym(Width::B32);
    let y32 = b.new_sym(Width::B32);
    b.load_imm(a8, 200);
    b.load_imm(x32, 1_000_000);
    b.un(UnOp::Not, c8, Operand::sym(a8));
    b.bin(BinOp::Add, y32, Operand::sym(x32), Operand::Imm(7));
    b.ret(Some(y32));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
    assert_eq!(out.stats.total_insts(), 0);
}

#[test]
fn eight_bit_pressure_uses_high_bytes() {
    // Six live 8-bit values plus the accumulator fit in AL..DH without
    // spills — provided the overlap constraints are per-byte, not
    // per-family (only four 32-bit families carry byte registers).
    let mut b = FunctionBuilder::new("bytes");
    let syms: Vec<_> = (0..6).map(|_| b.new_sym(Width::B8)).collect();
    for (i, &s) in syms.iter().enumerate() {
        b.load_imm(s, i as i64 + 1);
    }
    let mut acc = b.new_sym(Width::B8);
    b.load_imm(acc, 0);
    for &s in &syms {
        let t = b.new_sym(Width::B8);
        b.bin(BinOp::Add, t, Operand::sym(acc), Operand::sym(s));
        acc = t;
    }
    b.ret(Some(acc));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved);
    assert_eq!(
        out.stats.loads + out.stats.stores,
        0,
        "8 byte-registers exist: {:?}",
        out.stats
    );
}

#[test]
fn risc_machine_allocates_three_address() {
    let mut b = FunctionBuilder::new("risc");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_imm(x, 30);
    b.load_imm(y, 12);
    b.bin(BinOp::Sub, z, Operand::sym(x), Operand::sym(y));
    b.ret(Some(z));
    let f = b.finish();
    let out = alloc_risc(&f);
    assert!(out.solved_optimally);
    assert_eq!(out.stats.total_insts(), 0);
}

#[test]
fn risc_model_is_larger_than_x86_model() {
    // §6: the x86 IP model has far fewer constraints (6 vs 24 registers).
    let mut b = FunctionBuilder::new("cmp");
    let syms: Vec<_> = (0..4).map(|_| b.new_sym(Width::B32)).collect();
    for (i, &s) in syms.iter().enumerate() {
        b.load_imm(s, i as i64);
    }
    let mut acc = b.new_sym(Width::B32);
    b.load_imm(acc, 0);
    for &s in &syms {
        let t = b.new_sym(Width::B32);
        b.bin(BinOp::Add, t, Operand::sym(acc), Operand::sym(s));
        acc = t;
    }
    b.ret(Some(acc));
    let f = b.finish();
    let x86 = X86Machine::pentium();
    let risc = RiscMachine::new();
    let bx = IpAllocator::new(&x86).build_only(&f).unwrap();
    let br = IpAllocator::new(&risc).build_only(&f).unwrap();
    assert!(
        br.model.num_rows() > 2 * bx.model.num_rows(),
        "RISC {} rows vs x86 {} rows",
        br.model.num_rows(),
        bx.model.num_rows()
    );
}

#[test]
fn refused_width_functions_are_not_attempted() {
    let mut b = FunctionBuilder::new("w64");
    let x = b.new_sym(Width::B64);
    b.load_imm(x, 1);
    b.ret(None);
    let f = b.finish();
    let m = X86Machine::pentium();
    assert_eq!(
        IpAllocator::new(&m).allocate(&f).unwrap_err(),
        AllocError::WidthRefused
    );
}

#[test]
fn size_only_cost_model_allocates_correctly() {
    let mut b = FunctionBuilder::new("size");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    b.load_imm(x, 2);
    b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(40));
    b.ret(Some(y));
    let f = b.finish();
    let m = X86Machine::pentium();
    let out = IpAllocator::new(&m)
        .with_cost_model(CostModel::size_only())
        .allocate(&f)
        .unwrap();
    verify_allocated(&out.func).unwrap();
    check::equivalent::<X86RegFile>(&f, &out.func, 4, 3).unwrap();
    assert!(out.solved_optimally);
}

#[test]
fn short_opcode_steers_to_eax() {
    // add-with-immediate is one byte shorter via EAX (§5.4.1); with B=1000
    // the size term dominates, so the accumulator should be chosen.
    let mut b = FunctionBuilder::new("shortop");
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    b.load_imm(x, 1);
    b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(1000));
    b.ret(Some(y));
    let f = b.finish();
    let out = alloc_x86(&f);
    let add_reg = out
        .func
        .insts()
        .find_map(|(_, _, i)| match i {
            regalloc_ir::Inst::Bin {
                op: BinOp::Add,
                lhs: Operand::Loc(Loc::Real(r)),
                ..
            } => Some(*r),
            _ => None,
        })
        .expect("rewritten add");
    assert_eq!(add_reg, regalloc_x86::regs::EAX, "§5.4.1 discount");
}

#[test]
fn indirect_addressing_allocates_base_and_index() {
    let mut b = FunctionBuilder::new("addr");
    let base = b.new_sym(Width::B32);
    let idx = b.new_sym(Width::B32);
    let v = b.new_sym(Width::B32);
    b.load_imm(base, 0x2000);
    b.load_imm(idx, 3);
    b.store(
        Address::Indirect {
            base: Some(Loc::Sym(base)),
            index: Some((Loc::Sym(idx), Scale::S4)),
            disp: 8,
        },
        Operand::Imm(99),
        Width::B32,
    );
    b.load(
        v,
        Address::Indirect {
            base: Some(Loc::Sym(base)),
            index: Some((Loc::Sym(idx), Scale::S4)),
            disp: 8,
        },
    );
    b.ret(Some(v));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved_optimally);
}

#[test]
fn fallback_spill_everything_is_correct() {
    let mut b = FunctionBuilder::new("fb");
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_global(x, p);
    b.load_imm(y, 3);
    b.bin(BinOp::Mul, z, Operand::sym(x), Operand::sym(y));
    b.bin(BinOp::Add, z, Operand::sym(z), Operand::sym(x));
    b.ret(Some(z));
    let f = b.finish();
    let m = X86Machine::pentium();
    let cfg = regalloc_ir::Cfg::new(&f);
    let loops = regalloc_ir::LoopInfo::new(&f, &cfg);
    let profile = regalloc_ir::Profile::estimate(&f, &cfg, &loops);
    let (nf, stats) = fallback::spill_everything(&f, &profile, &m).expect("fallback allocates");
    verify_allocated(&nf).unwrap_or_else(|e| panic!("{e:?}\n{nf}"));
    check::equivalent::<X86RegFile>(&f, &nf, 6, 42)
        .unwrap_or_else(|e| panic!("fallback equivalence: {e}\n{nf}"));
    assert!(stats.loads > 0 && stats.stores > 0);
}

#[test]
fn diamond_control_flow_joins() {
    // A value defined before a diamond and used after it must be in a
    // consistent location at the join.
    let mut b = FunctionBuilder::new("diamond");
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    let t = b.new_sym(Width::B32);
    let then_b = b.block();
    let else_b = b.block();
    let join = b.block();
    b.load_global(x, p);
    b.branch(
        Cond::Gt,
        Operand::sym(x),
        Operand::Imm(10),
        Width::B32,
        then_b,
        else_b,
    );
    b.switch_to(then_b);
    b.bin(BinOp::Add, t, Operand::sym(x), Operand::Imm(1));
    b.jump(join);
    b.switch_to(else_b);
    b.bin(BinOp::Sub, t, Operand::sym(x), Operand::Imm(1));
    b.jump(join);
    b.switch_to(join);
    let r = b.new_sym(Width::B32);
    b.bin(BinOp::Add, r, Operand::sym(t), Operand::sym(x));
    b.ret(Some(r));
    let f = b.finish();
    let out = alloc_x86(&f);
    assert!(out.solved);
}

#[test]
fn zero_budget_still_solves_via_warm_start() {
    use regalloc_ilp::SolverConfig;
    use std::time::Duration;
    let mut b = FunctionBuilder::new("fbk");
    let syms: Vec<_> = (0..8).map(|_| b.new_sym(Width::B32)).collect();
    for (i, &s) in syms.iter().enumerate() {
        b.load_imm(s, i as i64);
    }
    let mut acc = b.new_sym(Width::B32);
    b.load_imm(acc, 0);
    for &s in &syms {
        let t = b.new_sym(Width::B32);
        b.bin(BinOp::Add, t, Operand::sym(acc), Operand::sym(s));
        acc = t;
    }
    b.ret(Some(acc));
    let f = b.finish();
    let m = X86Machine::pentium();
    let out = IpAllocator::new(&m)
        .with_solver_config(SolverConfig {
            time_limit: Duration::from_millis(0),
            ..Default::default()
        })
        .allocate(&f)
        .unwrap();
    // The warm start guarantees *an* allocation is emitted even with no
    // search budget, but the solver found nothing itself: Table 2 counts
    // this as unsolved.
    assert!(!out.solved, "zero budget finds nothing of its own");
    assert!(!out.solved_optimally);
    verify_allocated(&out.func).unwrap();
    check::equivalent::<X86RegFile>(&f, &out.func, 4, 5).unwrap();
}

#[test]
fn model_size_grows_roughly_linearly() {
    // Fig. 9's shape: constraints grow slightly super-linearly with
    // instruction count.
    let make = |n: usize| {
        let mut b = FunctionBuilder::new("grow");
        let mut prev = b.new_sym(Width::B32);
        b.load_imm(prev, 1);
        for i in 0..n {
            let t = b.new_sym(Width::B32);
            b.bin(BinOp::Add, t, Operand::sym(prev), Operand::Imm(i as i64));
            prev = t;
        }
        b.ret(Some(prev));
        b.finish()
    };
    let m = X86Machine::pentium();
    let small = IpAllocator::new(&m).build_only(&make(10)).unwrap();
    let large = IpAllocator::new(&m).build_only(&make(40)).unwrap();
    let ratio = large.model.num_rows() as f64 / small.model.num_rows() as f64;
    assert!(
        (2.0..12.0).contains(&ratio),
        "4x instructions -> {ratio:.1}x constraints"
    );
}
