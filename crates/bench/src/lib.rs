//! Shared experiment machinery for the paper-reproduction binaries.
//!
//! Each binary regenerates one table or figure of Kong & Wilken (MICRO
//! 1998); see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for recorded paper-vs-measured results:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — spill-code cost constants |
//! | `table2` | Table 2 — functions total/attempted/solved/optimal |
//! | `table3` | Table 3 — dynamic spill-overhead components, IP vs GCC |
//! | `fig9` | Fig. 9 — IP constraints vs intermediate instructions |
//! | `fig10` | Fig. 10 — optimal solution time vs constraints |
//! | `risc_compare` | §6 — x86 model size vs the 24-register RISC model |
//!
//! All binaries accept `--scale <f>` (fraction of each benchmark's
//! function count, default 0.2), `--seed <n>` (default 1998) and
//! `--time-limit <seconds>` (per-function solver budget, default 4; the
//! paper allowed CPLEX 1024 seconds per function on 1998 hardware).
//! Experiments now run through the `regalloc-driver` batch service, so
//! they also accept `--jobs <n>` (worker threads), `--budget-secs <s>`
//! (global wall-clock budget), `--cache-dir <dir>` (solution-cache
//! directory, default `results/cache`), `--no-cache` (in-memory
//! dedup only) and `--warm-starts on|off` (cross-function incumbent
//! warm starts from cached symbolic solutions, default on).

use std::path::PathBuf;
use std::time::Duration;

use regalloc_core::{ReasonCode, Rung, SpillStats, WarmStartKind};
use regalloc_driver::{run_suite, CacheMode, DriverConfig, DriverStats};
use regalloc_ilp::SolverConfig;
use regalloc_machine::TargetId;
use regalloc_obs::{FunctionTrace, Metrics, Phase};
use regalloc_workloads::{Benchmark, Suite};

/// Command-line options shared by the experiment binaries.
#[derive(Clone, Debug)]
pub struct Options {
    /// Target machine the driver allocates for (the paper's tables are
    /// measured on the default x86 Pentium model).
    pub target: TargetId,
    /// Fraction of each benchmark's paper function count to generate.
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
    /// Per-function solver budget.
    pub time_limit: Duration,
    /// Driver worker threads.
    pub jobs: usize,
    /// Optional global wall-clock budget for the whole run.
    pub global_budget: Option<Duration>,
    /// Solution-cache directory (`None` = in-memory dedup only).
    pub cache_dir: Option<PathBuf>,
    /// Seed cache misses with projected cached symbolic solutions.
    pub warm_starts: bool,
    /// Audit every optimality claim with the exact-rational certificate
    /// checker before counting it in the Table 2 "optimal" column.
    pub audit: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            target: TargetId::X86Pentium,
            scale: 0.2,
            seed: 1998,
            time_limit: Duration::from_secs(4),
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            global_budget: None,
            cache_dir: None,
            warm_starts: true,
            audit: false,
        }
    }
}

impl Options {
    /// Parse `--scale`, `--seed`, `--time-limit`, `--jobs`,
    /// `--budget-secs`, `--cache-dir` and `--no-cache` from
    /// `std::env::args`. Unlike [`Options::default`] (memory-only cache,
    /// so library callers never touch the filesystem unasked), the CLI
    /// defaults to persisting the solution cache under `results/cache`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Options {
        let mut o = Options {
            cache_dir: Some(PathBuf::from("results/cache")),
            ..Options::default()
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let need = |i: usize| {
                args.get(i + 1)
                    .unwrap_or_else(|| panic!("missing value for {}", args[i]))
            };
            match args[i].as_str() {
                "--target" => {
                    let t = need(i);
                    o.target = TargetId::parse(t).unwrap_or_else(|| panic!("unknown target `{t}`"));
                    i += 2;
                }
                "--scale" => {
                    o.scale = need(i).parse().expect("--scale takes a float");
                    i += 2;
                }
                "--seed" => {
                    o.seed = need(i).parse().expect("--seed takes an integer");
                    i += 2;
                }
                "--time-limit" => {
                    let secs: f64 = need(i).parse().expect("--time-limit takes seconds");
                    o.time_limit = Duration::from_secs_f64(secs);
                    i += 2;
                }
                "--jobs" => {
                    o.jobs = need(i).parse().expect("--jobs takes an integer");
                    i += 2;
                }
                "--budget-secs" => {
                    let secs: f64 = need(i).parse().expect("--budget-secs takes seconds");
                    o.global_budget = Some(Duration::from_secs_f64(secs));
                    i += 2;
                }
                "--cache-dir" => {
                    o.cache_dir = Some(PathBuf::from(need(i)));
                    i += 2;
                }
                "--no-cache" => {
                    o.cache_dir = None;
                    i += 1;
                }
                "--warm-starts" => {
                    o.warm_starts = match need(i).as_str() {
                        "on" => true,
                        "off" => false,
                        v => panic!("--warm-starts takes on|off, got {v}"),
                    };
                    i += 2;
                }
                "--audit" => {
                    o.audit = true;
                    i += 1;
                }
                other => panic!(
                    "unknown argument {other}; supported: --target --scale --seed \
                     --time-limit --jobs --budget-secs --cache-dir --no-cache \
                     --warm-starts --audit"
                ),
            }
        }
        o
    }

    /// The solver configuration the options describe. The driver applies
    /// this configuration to every function and every IP rung (it is also
    /// part of the solution-cache key), and each [`Record`] carries a copy
    /// so downstream analysis knows exactly which limits produced it.
    pub fn solver(&self) -> SolverConfig {
        SolverConfig {
            time_limit: self.time_limit,
            ..Default::default()
        }
    }

    /// The driver configuration the options describe.
    pub fn driver(&self) -> DriverConfig {
        DriverConfig {
            target: self.target,
            jobs: self.jobs,
            solver: self.solver(),
            function_budget: self
                .time_limit
                .saturating_mul(4)
                .max(Duration::from_secs(8)),
            global_budget: self.global_budget,
            cache: match &self.cache_dir {
                Some(d) => CacheMode::Disk(d.clone()),
                None => CacheMode::Memory,
            },
            cache_limits: regalloc_driver::cache::CacheLimits::unlimited(),
            equiv_runs: 2,
            equiv_seed: self.seed,
            compare_baseline: true,
            lint: true,
            revalidate_cache: true,
            warm_starts: self.warm_starts,
            warm_start_distance: 0.25,
            audit: self.audit,
            // The experiment harness always records traces: Figs. 9/10
            // are produced from the trace events, cross-checked against
            // the result fields.
            trace: true,
        }
    }
}

/// Per-function measurement record.
#[derive(Clone, Debug)]
pub struct Record {
    /// Source benchmark.
    pub benchmark: Benchmark,
    /// Function name.
    pub name: String,
    /// Intermediate instructions (Fig. 9 x-axis).
    pub insts: usize,
    /// True when the function was handed to the allocators (no 64-bit
    /// values).
    pub attempted: bool,
    /// IP constraints (Fig. 9 y-axis, Fig. 10 x-axis).
    pub constraints: usize,
    /// IP decision variables.
    pub variables: usize,
    /// Solver produced an allocation (Table 2 "solved").
    pub solved: bool,
    /// Solver proved optimality (Table 2 "optimal").
    pub optimal: bool,
    /// IP solve time (Fig. 10 y-axis).
    pub solve_time: Duration,
    /// IP allocator spill accounting.
    pub ip: SpillStats,
    /// Graph-coloring baseline spill accounting.
    pub gc: SpillStats,
    /// Encoded size of the IP pipeline's output, in bytes.
    pub ip_bytes: u64,
    /// Encoded size of the baseline's output, in bytes.
    pub gc_bytes: u64,
    /// Degradation-ladder rung that served the function (`None` when not
    /// attempted).
    pub rung: Option<Rung>,
    /// Demotion reasons the robust pipeline recorded on the way down.
    pub reasons: Vec<ReasonCode>,
    /// The solver configuration this function was allocated under (the
    /// same limits apply to every IP rung the ladder tried).
    pub solver: SolverConfig,
    /// Whether the driver's solution cache served this function.
    pub cache_hit: bool,
    /// Which incumbent seed the branch-and-bound search pruned against
    /// (`None`, or an exact/projected cached symbolic solution).
    pub warm_start: WarmStartKind,
    /// Branch-and-bound nodes the solve expanded.
    pub solver_nodes: u64,
    /// Simplex iterations across every LP relaxation, including pruned
    /// and abandoned nodes.
    pub lp_iters: u64,
    /// `regalloc-lint` quality findings over the accepted allocation.
    pub lints: usize,
    /// The structured solve trace (the harness always enables tracing).
    pub trace: Option<FunctionTrace>,
}

/// Run both allocators over every generated benchmark.
///
/// Since the driver rewire this is [`run_all_stats`] without the
/// aggregate statistics.
pub fn run_all(o: &Options) -> Vec<Record> {
    run_all_stats(o).0
}

/// Run both allocators over every generated benchmark through the
/// `regalloc-driver` batch service, returning per-function records plus
/// the driver's aggregate statistics (wall-clock, speedup, cache
/// traffic, per-rung counts).
///
/// The IP side runs through the fault-tolerant `RobustAllocator`
/// pipeline (with the graph-coloring baseline injected as its fourth
/// rung), so a solver failure on any function degrades that function
/// instead of aborting the whole experiment; each record carries the rung
/// that served it, any demotion reasons, and the solver configuration it
/// was allocated under.
pub fn run_all_stats(o: &Options) -> (Vec<Record>, DriverStats) {
    let (recs, stats, _) = run_all_metrics(o);
    (recs, stats)
}

/// [`run_all_stats`] plus the driver's merged metrics registry — the
/// authoritative source for suite-level aggregates (the Table 2 report
/// derives its solved/optimal/degradation counts from it).
pub fn run_all_metrics(o: &Options) -> (Vec<Record>, DriverStats, Metrics) {
    // One flat suite across all benchmarks, so the driver's scheduler and
    // workers see the full mix; map results back by index afterwards.
    let mut funcs = Vec::new();
    let mut owner = Vec::new();
    for b in Benchmark::all() {
        let suite = Suite::generate_scaled(b, o.seed, o.scale);
        owner.extend(std::iter::repeat_n(b, suite.functions.len()));
        funcs.extend(suite.functions);
    }
    let solver = o.solver();
    let outcome = run_suite(&funcs, &o.driver());

    let records = outcome
        .results
        .into_iter()
        .zip(owner)
        .map(|(r, benchmark)| {
            let base = r.baseline.as_ref();
            let (gc_stats, gc_bytes) =
                base.map_or((SpillStats::default(), 0), |c| (c.stats, c.bytes));
            // Paper pipeline: a function the IP solver does not solve
            // keeps the compiler's default (graph-coloring) allocation,
            // so its IP-side overhead equals the baseline's.
            let solved = r.solved();
            let optimal = r.solved_optimally();
            Record {
                benchmark,
                name: r.name,
                insts: r.num_insts,
                attempted: r.attempted,
                constraints: r.num_constraints,
                variables: r.num_vars,
                solved,
                optimal,
                solve_time: r.solve_time,
                ip: if solved { r.stats } else { gc_stats },
                gc: gc_stats,
                ip_bytes: if r.attempted {
                    if solved {
                        r.ip_bytes
                    } else {
                        gc_bytes
                    }
                } else {
                    0
                },
                gc_bytes: if r.attempted { gc_bytes } else { 0 },
                rung: r.rung,
                reasons: r.reasons,
                solver: solver.clone(),
                cache_hit: r.cache_hit,
                warm_start: r.warm_start,
                solver_nodes: r.solver_nodes,
                lp_iters: r.lp_iters,
                lints: r.lints.len(),
                trace: r.trace,
            }
        })
        .collect();
    (records, outcome.stats, outcome.metrics)
}

/// One Fig. 9 point, read from a record's `ModelBuilt` trace event and
/// cross-checked against the result fields.
#[derive(Clone, Debug)]
pub struct Fig9Point {
    pub benchmark: Benchmark,
    pub function: String,
    /// Intermediate instructions (x-axis).
    pub insts: u64,
    /// IP decision variables.
    pub vars: u64,
    /// IP constraints (y-axis).
    pub constraints: u64,
}

/// Extract the Fig. 9 scatter from the trace events of attempted
/// functions whose model built.
///
/// # Panics
///
/// Panics if a trace's `ModelBuilt` payload disagrees with the record it
/// rides on — the instrumentation would be lying about the experiment.
pub fn fig9_points(recs: &[Record]) -> Vec<Fig9Point> {
    let mut pts = Vec::new();
    for r in recs.iter().filter(|r| r.attempted) {
        let Some((insts, vars, constraints)) = r.trace.as_ref().and_then(|t| t.model_built())
        else {
            continue;
        };
        assert_eq!(
            (insts, vars, constraints),
            (r.insts as u64, r.variables as u64, r.constraints as u64),
            "{}: ModelBuilt trace event disagrees with the driver result",
            r.name
        );
        pts.push(Fig9Point {
            benchmark: r.benchmark,
            function: r.name.clone(),
            insts,
            vars,
            constraints,
        });
    }
    pts
}

/// One Fig. 10 point, read from a record's `SolveDone` trace event and the
/// trace's solve-phase wall time.
#[derive(Clone, Debug)]
pub struct Fig10Point {
    pub benchmark: Benchmark,
    pub function: String,
    /// IP constraints (x-axis).
    pub constraints: u64,
    /// IP solve wall time in seconds (y-axis; the trace's solve phase
    /// equals `Solution::solve_time` exactly).
    pub solve_seconds: f64,
    /// Branch-and-bound nodes the solve expanded.
    pub nodes: u64,
    /// Simplex iterations across every LP relaxation.
    pub lp_iters: u64,
}

/// Extract the Fig. 10 scatter from trace events: optimally-solved,
/// freshly-solved functions only (cache hits replay a stored allocation,
/// so their solve time is not a measurement).
///
/// # Panics
///
/// Panics if a trace's `SolveDone` payload disagrees with the record it
/// rides on.
pub fn fig10_points(recs: &[Record]) -> Vec<Fig10Point> {
    let mut pts = Vec::new();
    for r in recs.iter().filter(|r| r.optimal && !r.cache_hit) {
        let Some(t) = &r.trace else { continue };
        let Some((status, nodes, lp_iters)) = t.solve_done() else {
            continue;
        };
        assert_eq!(
            status, "optimal",
            "{}: rung says optimal, trace says {status}",
            r.name
        );
        assert_eq!(
            (nodes, lp_iters),
            (r.solver_nodes, r.lp_iters),
            "{}: SolveDone trace event disagrees with the driver result",
            r.name
        );
        pts.push(Fig10Point {
            benchmark: r.benchmark,
            function: r.name.clone(),
            constraints: r.constraints as u64,
            solve_seconds: t.phase_seconds(Phase::Solve),
            nodes,
            lp_iters,
        });
    }
    pts
}

/// Aggregated degradation-ladder accounting for a set of records,
/// printed under the Table 2/Table 3 reports.
#[derive(Clone, Debug, Default)]
pub struct DegradationSummary {
    /// Functions served per rung, in ladder order.
    pub rungs: Vec<(Rung, usize)>,
    /// Demotion reasons recorded, with counts.
    pub reasons: Vec<(ReasonCode, usize)>,
}

impl DegradationSummary {
    /// Tally rungs and demotion reasons over `recs`.
    pub fn collect<'r>(recs: impl IntoIterator<Item = &'r Record>) -> DegradationSummary {
        let mut rungs: Vec<(Rung, usize)> = Rung::ALL.iter().map(|&r| (r, 0)).collect();
        let mut reasons: Vec<(ReasonCode, usize)> = Vec::new();
        for r in recs {
            if let Some(rung) = r.rung {
                rungs.iter_mut().find(|(x, _)| *x == rung).unwrap().1 += 1;
            }
            for &rc in &r.reasons {
                match reasons.iter_mut().find(|(x, _)| *x == rc) {
                    Some(e) => e.1 += 1,
                    None => reasons.push((rc, 1)),
                }
            }
        }
        DegradationSummary { rungs, reasons }
    }

    /// Tally rungs and demotion reasons from the driver's metrics
    /// registry (`regalloc_rung_functions_total{rung=..}` and
    /// `regalloc_demotions_total{reason=..}`) instead of re-counting
    /// per-function results. Reasons come out in canonical
    /// [`ReasonCode::ALL`] order.
    pub fn from_metrics(m: &Metrics) -> DegradationSummary {
        let by_rung = m.counter_by_label("regalloc_rung_functions_total", "rung");
        let rungs = Rung::ALL
            .iter()
            .map(|&r| {
                let n = by_rung
                    .iter()
                    .find(|(name, _)| Rung::from_name(name) == Some(r))
                    .map_or(0, |(_, n)| *n as usize);
                (r, n)
            })
            .collect();
        let by_reason = m.counter_by_label("regalloc_demotions_total", "reason");
        let reasons = ReasonCode::ALL
            .iter()
            .filter_map(|&rc| {
                by_reason
                    .iter()
                    .find(|(name, _)| ReasonCode::from_name(name) == Some(rc))
                    .map(|(_, n)| (rc, *n as usize))
            })
            .collect();
        DegradationSummary { rungs, reasons }
    }

    /// Functions that degraded below the IP rungs.
    pub fn degraded(&self) -> usize {
        self.rungs
            .iter()
            .filter(|(r, _)| *r > Rung::IpIncumbent)
            .map(|(_, n)| n)
            .sum()
    }
}

impl std::fmt::Display for DegradationSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rungs:")?;
        for (r, n) in &self.rungs {
            write!(f, " {r} {n}")?;
        }
        if self.reasons.is_empty() {
            write!(f, "; no demotions")?;
        } else {
            write!(f, "; demotions:")?;
            for (r, n) in &self.reasons {
                write!(f, " {r} {n}")?;
            }
        }
        Ok(())
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the growth exponent
/// quoted for Figs. 9 and 10 (the paper reports roughly `O(n^2.5)` for
/// solve time vs constraints).
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Render a ratio like the paper's Table 3 (`IP/GCC` column): two decimal
/// places, with the sign conventions of net counts preserved.
pub fn ratio(a: i64, b: i64) -> String {
    if b == 0 {
        return "—".to_string();
    }
    format!("{:.2}", a as f64 / b as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_power_law() {
        let pts: Vec<(f64, f64)> = (1..50)
            .map(|i| (i as f64, (i as f64).powf(2.5) * 3.0))
            .collect();
        let s = loglog_slope(&pts);
        assert!((s - 2.5).abs() < 1e-6, "slope {s}");
    }

    #[test]
    fn slope_handles_degenerate_input() {
        assert!(loglog_slope(&[]).is_nan());
        assert!(loglog_slope(&[(1.0, 1.0)]).is_nan());
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(36, 100), "0.36");
        assert_eq!(ratio(-331, -53), "6.25");
        assert_eq!(ratio(1, 0), "—");
    }

    #[test]
    fn tiny_run_produces_records() {
        let o = Options {
            scale: 0.004,
            seed: 3,
            time_limit: Duration::from_millis(100),
            ..Options::default()
        };
        let (recs, stats) = run_all_stats(&o);
        assert!(recs.len() >= 6, "at least one function per benchmark");
        assert!(recs.iter().any(|r| !r.attempted), "64-bit functions remain");
        for r in recs.iter().filter(|r| r.attempted) {
            assert!(r.constraints > 0);
            assert!(r.rung.is_some(), "attempted functions report their rung");
            assert_eq!(
                r.solver.time_limit,
                Duration::from_millis(100),
                "records carry the solver configuration they ran under"
            );
        }
        let summary = DegradationSummary::collect(recs.iter().filter(|r| r.attempted));
        let served: usize = summary.rungs.iter().map(|(_, n)| n).sum();
        let attempted = recs.iter().filter(|r| r.attempted).count();
        assert_eq!(
            served, attempted,
            "every attempted function was served by exactly one rung"
        );
        assert_eq!(stats.attempted, attempted);
        assert_eq!(stats.functions, recs.len());
        assert_eq!(stats.cache_hits + stats.cache_misses, attempted);
    }

    /// The figure extractors and the metrics registry must agree with the
    /// per-function records and the driver's own totals — the traces are
    /// an independent account of the same run.
    #[test]
    fn trace_totals_match_driver_totals() {
        let o = Options {
            scale: 0.004,
            seed: 3,
            time_limit: Duration::from_millis(100),
            ..Options::default()
        };
        let (recs, stats, metrics) = run_all_metrics(&o);
        let attempted: Vec<_> = recs.iter().filter(|r| r.attempted).collect();
        assert!(!attempted.is_empty());
        for r in &attempted {
            assert!(r.trace.is_some(), "{}: harness runs always trace", r.name);
        }

        // Fig. 9: one point per attempted function whose model built; the
        // extractor itself asserts each point equals the record fields.
        let f9 = fig9_points(&recs);
        let built = attempted
            .iter()
            .filter(|r| r.trace.as_ref().unwrap().model_built().is_some())
            .count();
        assert_eq!(f9.len(), built);
        assert!(built > 0, "some models must build at this scale");

        // Fig. 10: the trace-derived node/iteration totals are the same
        // numbers the driver reports on the records.
        let f10 = fig10_points(&recs);
        let fresh_optimal: Vec<_> = recs.iter().filter(|r| r.optimal && !r.cache_hit).collect();
        assert_eq!(f10.len(), fresh_optimal.len());
        let trace_nodes: u64 = f10.iter().map(|p| p.nodes).sum();
        let trace_iters: u64 = f10.iter().map(|p| p.lp_iters).sum();
        assert_eq!(
            trace_nodes,
            fresh_optimal.iter().map(|r| r.solver_nodes).sum::<u64>()
        );
        assert_eq!(
            trace_iters,
            fresh_optimal.iter().map(|r| r.lp_iters).sum::<u64>()
        );
        for p in &f10 {
            assert!(
                p.solve_seconds > 0.0,
                "{}: solve phase was timed",
                p.function
            );
        }

        // Metrics registry vs records and DriverStats.
        assert_eq!(
            metrics.counter("regalloc_functions_total", &[]),
            recs.len() as u64
        );
        assert_eq!(
            metrics.counter("regalloc_functions_attempted_total", &[]),
            attempted.len() as u64
        );
        assert_eq!(
            metrics.counter("regalloc_functions_solved_total", &[]),
            recs.iter().filter(|r| r.solved).count() as u64
        );
        assert_eq!(
            metrics.counter("regalloc_functions_optimal_total", &[]),
            recs.iter().filter(|r| r.optimal).count() as u64
        );
        assert_eq!(
            metrics.counter("regalloc_solver_nodes_total", &[]),
            recs.iter().map(|r| r.solver_nodes).sum::<u64>()
        );
        assert_eq!(
            stats.attempted as u64,
            metrics.counter("regalloc_functions_attempted_total", &[])
        );

        // The metrics-sourced degradation summary matches the one counted
        // from the records.
        let from_recs = DegradationSummary::collect(recs.iter().filter(|r| r.attempted));
        let from_metrics = DegradationSummary::from_metrics(&metrics);
        assert_eq!(from_recs.rungs, from_metrics.rungs);
        let total_reasons: usize = from_recs.reasons.iter().map(|(_, n)| n).sum();
        let metric_reasons: usize = from_metrics.reasons.iter().map(|(_, n)| n).sum();
        assert_eq!(total_reasons, metric_reasons);
    }
}
