//! Fig. 10 — optimal solution time vs number of IP constraints (log-log
//! scatter over the functions solved optimally).
//!
//! The paper fits roughly `O(n^2.5)`. Absolute times are incomparable
//! (CPLEX 6.0 on a 1998 PA-8000 vs this from-scratch solver), but the
//! growth exponent is the figure's point. CSV on stdout, fit and ASCII
//! scatter on stderr.

use regalloc_bench::{fig10_points, loglog_slope, run_all, Options};

fn main() {
    let o = Options::from_args();
    eprintln!(
        "generating suites at scale {} (seed {}), solver limit {:?}…",
        o.scale, o.seed, o.time_limit
    );
    let recs = run_all(&o);

    // The fit is produced from the `SolveDone` trace events and the
    // trace's solve-phase wall time; the extractor cross-checks every
    // point against the driver's result and drops cache hits (a replayed
    // allocation's solve time is not a measurement).
    println!("constraints,solve_seconds,nodes,lp_iters,benchmark,function");
    let mut pts = Vec::new();
    for p in fig10_points(&recs) {
        println!(
            "{},{:.6},{},{},{},{}",
            p.constraints,
            p.solve_seconds,
            p.nodes,
            p.lp_iters,
            p.benchmark.name(),
            p.function
        );
        pts.push((p.constraints as f64, p.solve_seconds));
    }
    let slope = loglog_slope(&pts);
    eprintln!();
    eprintln!(
        "Fig. 10: optimal solve time ~ constraints^{slope:.2} over {} optimally-solved functions",
        pts.len()
    );
    eprintln!("paper: \"roughly O(n^2.5) with respect to the number of constraints\"");

    let (w, h) = (64usize, 20usize);
    let (min_x, max_x) = (10.0_f64.ln(), 10000.0_f64.ln());
    let (min_y, max_y) = (1e-4_f64.ln(), 10.0_f64.ln());
    let mut grid = vec![vec![b' '; w]; h];
    for (x, y) in &pts {
        if *y <= 0.0 {
            continue;
        }
        let gx = ((x.ln() - min_x) / (max_x - min_x) * (w - 1) as f64).clamp(0.0, (w - 1) as f64)
            as usize;
        let gy = ((y.ln() - min_y) / (max_y - min_y) * (h - 1) as f64).clamp(0.0, (h - 1) as f64)
            as usize;
        grid[h - 1 - gy][gx] = b'o';
    }
    eprintln!("solve time (log) ^");
    for row in grid {
        eprintln!("  |{}", String::from_utf8_lossy(&row));
    }
    eprintln!("  +{}> constraints (log)", "-".repeat(w));
}
