//! Fig. 10 — optimal solution time vs number of IP constraints (log-log
//! scatter over the functions solved optimally).
//!
//! The paper fits roughly `O(n^2.5)`. Absolute times are incomparable
//! (CPLEX 6.0 on a 1998 PA-8000 vs this from-scratch solver), but the
//! growth exponent is the figure's point. CSV on stdout, fit and ASCII
//! scatter on stderr.

use regalloc_bench::{loglog_slope, run_all, Options};

fn main() {
    let o = Options::from_args();
    eprintln!(
        "generating suites at scale {} (seed {}), solver limit {:?}…",
        o.scale, o.seed, o.time_limit
    );
    let recs = run_all(&o);

    println!("constraints,solve_seconds,benchmark,function");
    let mut pts = Vec::new();
    // Cache hits replay a stored allocation, so their solve_time is not a
    // measurement — only freshly-solved functions belong in the fit.
    for r in recs.iter().filter(|r| r.optimal && !r.cache_hit) {
        let secs = r.solve_time.as_secs_f64();
        println!(
            "{},{:.6},{},{}",
            r.constraints,
            secs,
            r.benchmark.name(),
            r.name
        );
        pts.push((r.constraints as f64, secs));
    }
    let slope = loglog_slope(&pts);
    eprintln!();
    eprintln!(
        "Fig. 10: optimal solve time ~ constraints^{slope:.2} over {} optimally-solved functions",
        pts.len()
    );
    eprintln!("paper: \"roughly O(n^2.5) with respect to the number of constraints\"");

    let (w, h) = (64usize, 20usize);
    let (min_x, max_x) = (10.0_f64.ln(), 10000.0_f64.ln());
    let (min_y, max_y) = (1e-4_f64.ln(), 10.0_f64.ln());
    let mut grid = vec![vec![b' '; w]; h];
    for (x, y) in &pts {
        if *y <= 0.0 {
            continue;
        }
        let gx = ((x.ln() - min_x) / (max_x - min_x) * (w - 1) as f64).clamp(0.0, (w - 1) as f64)
            as usize;
        let gy = ((y.ln() - min_y) / (max_y - min_y) * (h - 1) as f64).clamp(0.0, (h - 1) as f64)
            as usize;
        grid[h - 1 - gy][gx] = b'o';
    }
    eprintln!("solve time (log) ^");
    for row in grid {
        eprintln!("  |{}", String::from_utf8_lossy(&row));
    }
    eprintln!("  +{}> constraints (log)", "-".repeat(w));
}
