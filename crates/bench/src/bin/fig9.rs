//! Fig. 9 — number of IP constraints vs number of intermediate
//! instructions (log-log scatter).
//!
//! The paper observes slightly super-linear growth. This binary emits the
//! scatter as CSV on stdout plus the fitted log-log growth exponent, and
//! an ASCII rendition of the log-log scatter on stderr.

use regalloc_bench::{fig9_points, loglog_slope, run_all, Options};

fn main() {
    let o = Options::from_args();
    eprintln!("generating suites at scale {} (seed {})…", o.scale, o.seed);
    // Model construction only depends on the function, not on solving; a
    // tiny solver budget keeps this figure cheap.
    let o = Options {
        time_limit: std::time::Duration::from_millis(1),
        ..o
    };
    let recs = run_all(&o);

    // The scatter is read from the `ModelBuilt` trace events; the
    // extractor cross-checks each point against the driver's result.
    println!("instructions,variables,constraints,benchmark,function");
    let mut pts = Vec::new();
    for p in fig9_points(&recs) {
        println!(
            "{},{},{},{},{}",
            p.insts,
            p.vars,
            p.constraints,
            p.benchmark.name(),
            p.function
        );
        pts.push((p.insts as f64, p.constraints as f64));
    }
    let slope = loglog_slope(&pts);
    eprintln!();
    eprintln!(
        "Fig. 9: constraints ~ instructions^{slope:.2} over {} functions",
        pts.len()
    );
    eprintln!("paper: growth \"only slightly higher than linear\"");

    // ASCII log-log scatter.
    let (w, h) = (64usize, 20usize);
    let (min_x, max_x) = (1.0_f64.ln(), 200.0_f64.ln());
    let (min_y, max_y) = (10.0_f64.ln(), 20000.0_f64.ln());
    let mut grid = vec![vec![b' '; w]; h];
    for (x, y) in &pts {
        let gx = ((x.ln() - min_x) / (max_x - min_x) * (w - 1) as f64).clamp(0.0, (w - 1) as f64)
            as usize;
        let gy = ((y.ln() - min_y) / (max_y - min_y) * (h - 1) as f64).clamp(0.0, (h - 1) as f64)
            as usize;
        grid[h - 1 - gy][gx] = b'o';
    }
    eprintln!("constraints (log) ^");
    for row in grid {
        eprintln!("  |{}", String::from_utf8_lossy(&row));
    }
    eprintln!("  +{}> instructions (log)", "-".repeat(w));
}
