//! Table 2 — number of functions solved under the per-function solver
//! time limit.
//!
//! Columns as in the paper: total functions per benchmark, attempted
//! (functions without 64-bit values), solved (the solver produced an
//! allocation of its own) and optimal (proved). The paper's absolute
//! percentages (98.1% solved, 97.6% optimal) reflect CPLEX 6.0 with a
//! 1024-second budget; this reproduction's from-scratch solver is far
//! weaker, so the split shifts downward with function size while keeping
//! the same structure — see EXPERIMENTS.md.

use regalloc_bench::{run_all_metrics, DegradationSummary, Options};
use regalloc_core::WarmStartKind;
use regalloc_workloads::Benchmark;

fn main() {
    let o = Options::from_args();
    eprintln!(
        "generating suites at scale {} (seed {}), solver limit {:?} per function, {} worker(s)…",
        o.scale, o.seed, o.time_limit, o.jobs
    );
    let (recs, stats, metrics) = run_all_metrics(&o);

    println!(
        "Table 2. Number of functions solved with a solver time limit of {:?}.",
        o.time_limit
    );
    println!(
        "{:<10} {:>7} {:>10} {:>8} {:>9}",
        "Benchmark", "Total", "Attempted", "Solved", "Optimal"
    );
    for b in Benchmark::all() {
        let rows: Vec<_> = recs.iter().filter(|r| r.benchmark == b).collect();
        let total = rows.len();
        let attempted = rows.iter().filter(|r| r.attempted).count();
        let solved = rows.iter().filter(|r| r.solved).count();
        let optimal = rows.iter().filter(|r| r.optimal).count();
        println!(
            "{:<10} {:>7} {:>10} {:>8} {:>9}",
            b.name(),
            total,
            attempted,
            solved,
            optimal
        );
    }
    // The Total row and the percentages below come from the driver's
    // metrics registry, not from re-counting the per-function records —
    // the registry is merged in suite order from per-task shards, so this
    // also exercises that plumbing end to end.
    let t = metrics.counter("regalloc_functions_total", &[]);
    let a = metrics.counter("regalloc_functions_attempted_total", &[]);
    let s = metrics.counter("regalloc_functions_solved_total", &[]);
    let op = metrics.counter("regalloc_functions_optimal_total", &[]);
    println!("{:<10} {:>7} {:>10} {:>8} {:>9}", "Total", t, a, s, op);
    println!();
    println!("Degradation ladder (robust pipeline):");
    for b in Benchmark::all() {
        let sum =
            DegradationSummary::collect(recs.iter().filter(|r| r.benchmark == b && r.attempted));
        println!("  {:<10} {sum}", b.name());
    }
    let total = DegradationSummary::from_metrics(&metrics);
    println!("  {:<10} {total}", "Total");
    println!(
        "  {} of {} attempted functions degraded below the IP rungs; 0 process aborts",
        total.degraded(),
        a
    );
    let lints = metrics.counter_family_sum("regalloc_lint_findings_total");
    let linted = recs.iter().filter(|r| r.lints > 0).count();
    println!("  lint: {lints} finding(s) across {linted} function(s)");
    println!();
    println!(
        "solved {:.1}% of attempted, optimal {:.1}% of attempted",
        100.0 * s as f64 / a.max(1) as f64,
        100.0 * op as f64 / a.max(1) as f64
    );
    println!("paper (1024 s, CPLEX 6.0): total 2400, attempted 2363, solved 2354 (98.1%), optimal 2342 (97.6%)");
    println!();
    println!(
        "driver: wall {:.1}s, cpu {:.1}s, speedup {:.2}x over sequential ({} worker(s), {:.0}% utilized)",
        stats.wall_time.as_secs_f64(),
        stats.cpu_time.as_secs_f64(),
        stats.speedup(),
        stats.jobs,
        stats.utilization() * 100.0
    );
    println!(
        "        throughput {:.1} fn/s; cache {} hits / {} misses ({:.0}% hit rate), {} rejected",
        stats.throughput(),
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
        stats.cache_rejected
    );
    // Warm-start accounting over fresh solves only: a cache hit skips
    // the solver entirely, so its recorded kind describes the original
    // solve, not this run.
    let fresh = |kind| {
        recs.iter()
            .filter(move |r| r.attempted && !r.cache_hit && r.warm_start == kind)
    };
    let nodes = |kind| fresh(kind).map(|r| r.solver_nodes).sum::<u64>();
    println!(
        "        warm starts: {} exact ({} nodes), {} projected ({} nodes), {} unseeded ({} nodes)",
        fresh(WarmStartKind::Exact).count(),
        nodes(WarmStartKind::Exact),
        fresh(WarmStartKind::Projected).count(),
        nodes(WarmStartKind::Projected),
        fresh(WarmStartKind::None).count(),
        nodes(WarmStartKind::None),
    );
}
