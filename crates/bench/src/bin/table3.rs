//! Table 3 — components of dynamic spill-code overhead, IP vs the
//! graph-coloring baseline ("GCC").
//!
//! Counts are profile-weighted net instruction counts (inserted −
//! deleted), exactly as in the paper: rematerialisation can go negative
//! for the baseline (deleted constant definitions), copies go negative
//! for the IP allocator (§5.1 copy deletion beats insertion).
//!
//! Two aggregations are reported:
//!  * over every attempted function (the paper's setting — its solver
//!    solved 98% of functions optimally, ours cannot, so warm-start
//!    allocations dilute the IP side);
//!  * over the optimally-solved subset, where the reproduction's IP
//!    allocations are provably the cost-model minimum.

use regalloc_bench::{ratio, run_all_stats, DegradationSummary, Options, Record};

fn print_block(title: &str, rows: &[&Record]) {
    let mut ip = regalloc_core::SpillStats::default();
    let mut gc = regalloc_core::SpillStats::default();
    let (mut ipb, mut gcb) = (0u64, 0u64);
    for r in rows {
        ip += r.ip;
        gc += r.gc;
        ipb += r.ip_bytes;
        gcb += r.gc_bytes;
    }
    println!("{title} ({} functions)", rows.len());
    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "Overhead Type", "IP", "GCC", "IP/GCC"
    );
    let lines = [
        ("Spill Load", ip.loads, gc.loads),
        ("Spill Store", ip.stores, gc.stores),
        ("Rematerialization", ip.remats, gc.remats),
        ("Copy", ip.copies, gc.copies),
    ];
    for (name, a, b) in lines {
        println!("{:<18} {:>12} {:>12} {:>9}", name, a, b, ratio(a, b));
    }
    println!(
        "{:<18} {:>12} {:>12} {:>9}",
        "Total",
        ip.total_insts(),
        gc.total_insts(),
        ratio(ip.total_insts(), gc.total_insts())
    );
    let (ic, gcx) = (ip.overhead_cycles(), gc.overhead_cycles());
    println!("dynamic overhead: IP {ic} cycles, GCC {gcx} cycles");
    println!(
        "spill code size: IP {} bytes, GCC {} bytes (whole functions: {ipb} vs {gcb})",
        ip.code_bytes, gc.code_bytes
    );
    // eq. (1) exactly as the paper computes it: Table 3's dynamic counts
    // weighted by Table 1's cycle costs, plus B × the static spill-code
    // bytes.
    let e1_ip = ic + 1000 * ip.code_bytes;
    let e1_gc = gcx + 1000 * gc.code_bytes;
    println!("eq.(1) overhead (B = 1000): IP {e1_ip}, GCC {e1_gc}");
    if e1_gc > 0 {
        println!(
            "the IP allocator changes register-allocation overhead by {:+.0}%",
            100.0 * (e1_ip - e1_gc) as f64 / e1_gc as f64
        );
    }
    println!();
}

fn main() {
    let o = Options::from_args();
    eprintln!(
        "generating suites at scale {} (seed {}), solver limit {:?} per function, {} worker(s)…",
        o.scale, o.seed, o.time_limit, o.jobs
    );
    let (recs, stats) = run_all_stats(&o);
    let attempted: Vec<&Record> = recs.iter().filter(|r| r.attempted).collect();
    let optimal: Vec<&Record> = recs.iter().filter(|r| r.optimal).collect();

    println!("Table 3. Components of dynamic spill code overhead.");
    println!();
    print_block("All attempted functions", &attempted);
    print_block("Optimally solved subset", &optimal);
    let sum = DegradationSummary::collect(attempted.iter().copied());
    println!("degradation ladder: {sum}");
    let lints: usize = attempted.iter().map(|r| r.lints).sum();
    println!("lint: {lints} finding(s) over accepted allocations");
    println!();
    println!("paper: loads 0.41, stores 0.56, remat -29, copy 6.3, total 0.36;");
    println!("       551M vs 1410M cycles — a 61% overhead reduction.");
    println!();
    println!(
        "driver: wall {:.1}s, speedup {:.2}x over sequential ({} worker(s)); cache {:.0}% hit rate",
        stats.wall_time.as_secs_f64(),
        stats.speedup(),
        stats.jobs,
        stats.hit_rate() * 100.0
    );
}
