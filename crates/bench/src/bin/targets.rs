//! §6 generalized — the IP model across every registered target.
//!
//! The paper compares the x86 model against a uniform 24-register RISC
//! and finds the irregular machine's model *smaller* (fewer registers →
//! fewer variables and constraints), turning irregularity into a solver
//! advantage. With the target registry this binary extends that
//! comparison to all registered machines, including the 8-register
//! accumulator MCU, over two function pools:
//!
//! * the **portable** pool — 16-bit, no symbolic addressing — which every
//!   target's register classes accept, so all machines model the *same*
//!   functions; and
//! * the **classic** pool — the paper's 32-bit workload mix — which the
//!   MCU refuses (its pair registers stop at 16 bits), reproducing the
//!   original two-machine table.
//!
//! For each pool the table reports per-target totals and the
//! constraint-count ratio against the x86 baseline.

use regalloc_bench::Options;
use regalloc_core::targets;
use regalloc_core::IpAllocator;
use regalloc_ir::Function;
use regalloc_machine::{refuses, TargetId};
use regalloc_workloads::{fuzz_function, GenConfig};

struct Row {
    target: TargetId,
    functions: usize,
    constraints: usize,
    variables: usize,
}

fn measure(o: &Options, pool: &[Function]) -> Vec<Row> {
    let mut rows = Vec::new();
    for (t, m) in targets::all() {
        let ip = IpAllocator::new(m.as_ref()).with_solver_config(o.solver());
        let (mut n, mut c, mut v) = (0usize, 0usize, 0usize);
        for f in pool {
            if refuses(m.as_ref(), f) {
                continue;
            }
            let built = ip.build_only(f).expect("accepted function must model");
            n += 1;
            c += built.model.num_rows();
            v += built.model.num_vars();
        }
        rows.push(Row {
            target: t,
            functions: n,
            constraints: c,
            variables: v,
        });
    }
    rows
}

fn print_table(title: &str, pool_size: usize, rows: &[Row]) {
    println!("{title} ({pool_size} functions in pool)");
    println!(
        "  {:<12} {:>9} {:>12} {:>10} {:>10}",
        "target", "functions", "constraints", "variables", "vs x86"
    );
    let base = rows
        .iter()
        .find(|r| r.target == TargetId::X86Pentium)
        .map(|r| r.constraints)
        .unwrap_or(0);
    for r in rows {
        let ratio = if base > 0 && r.functions > 0 {
            format!("{:.2}", r.constraints as f64 / base as f64)
        } else {
            "—".to_string()
        };
        println!(
            "  {:<12} {:>9} {:>12} {:>10} {:>10}",
            r.target.name(),
            r.functions,
            r.constraints,
            r.variables,
            ratio
        );
    }
    println!();
}

fn main() {
    let o = Options::from_args();
    // Pool sizes follow --scale like the other binaries; model building
    // dominates, so the samples stay light.
    let count = ((o.scale * 250.0).round() as usize).max(8);

    let portable: Vec<Function> = (0..count)
        .map(|i| {
            fuzz_function(
                &format!("p16_{i}"),
                o.seed.wrapping_add(i as u64),
                &GenConfig::portable16(),
            )
        })
        .collect();
    let classic: Vec<Function> = (0..count)
        .map(|i| {
            fuzz_function(
                &format!("c32_{i}"),
                o.seed.wrapping_add(0x9e37 + i as u64),
                &GenConfig::fuzz(),
            )
        })
        .collect();

    println!("per-target IP model comparison (§6, generalized)\n");
    print_table(
        "portable 16-bit pool — every target attempts",
        portable.len(),
        &measure(&o, &portable),
    );
    print_table(
        "classic 32-bit pool — the paper's workload mix",
        classic.len(),
        &measure(&o, &classic),
    );
    println!("paper: fewer allocatable registers -> a smaller 0-1 model; the x86's");
    println!("       irregularity is a size advantage, and the MCU (8 registers,");
    println!("       accumulator-pinned) continues the trend below the x86.");
}
