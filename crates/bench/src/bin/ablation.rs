//! Ablation: how much does each irregularity model matter?
//!
//! Three machine configurations allocate the same workload sample:
//!
//!  * `x86-6` — the paper's configuration (EAX…EDI allocatable);
//!  * `x86-7 (EBP free)` — the frame pointer joins the pool, engaging the
//!    §5.4.2 `[EBP]` addressing penalty and growing every register class;
//!  * `x86-8 (ESP too)` — additionally ESP, engaging its base-register
//!    penalty and the §5.4.3 scaled-index exclusion.
//!
//! More registers mean less spill but a bigger IP; the table quantifies
//! both directions, an ablation of the design choice the paper fixes at
//! six registers.

use regalloc_bench::Options;
use regalloc_core::IpAllocator;
use regalloc_workloads::{Benchmark, Suite};
use regalloc_x86::X86Machine;

fn main() {
    let o = Options::from_args();
    let configs = [
        ("x86-6 (paper)", X86Machine::pentium()),
        ("x86-7 (EBP free)", X86Machine::with_frame_pointer_free()),
        ("x86-8 (ESP too)", X86Machine::with_esp()),
    ];
    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "config", "funcs", "rows", "vars", "optimal", "overhead", "bytes"
    );
    for (name, machine) in configs {
        let ip = IpAllocator::new(&machine).with_solver_config(o.solver());
        let (mut rows, mut vars, mut optimal, mut overhead, mut bytes, mut n) =
            (0usize, 0usize, 0usize, 0i64, 0i64, 0usize);
        for b in [Benchmark::Xlisp, Benchmark::Compress] {
            let suite = Suite::generate_scaled(b, o.seed, (o.scale * 0.5).max(0.01));
            for f in suite.functions.iter().filter(|f| !f.uses_64bit()) {
                let out = ip.allocate(f).expect("attempted");
                rows += out.num_constraints;
                vars += out.num_vars;
                optimal += out.solved_optimally as usize;
                overhead += out.stats.overhead_cycles();
                bytes += out.stats.code_bytes;
                n += 1;
            }
        }
        println!(
            "{:<18} {:>6} {:>10} {:>10} {:>8} {:>10} {:>10}",
            name, n, rows, vars, optimal, overhead, bytes
        );
    }
    println!();
    println!("more allocatable registers → larger IPs (slower proofs) but less spill;");
    println!("the §5.4.2/§5.4.3 penalties only exist in the 7- and 8-register rows.");
}
