//! `observatory` — build a performance-regression snapshot.
//!
//! Runs the seeded paper workloads plus the compiled-C corpus under the
//! deterministic observatory solver regime (every outcome decided by
//! node/iteration limits, never by the clock) against every registered
//! target, and writes one schema-versioned JSON snapshot.
//!
//! With `--no-timing` the snapshot is byte-identical across `--jobs`
//! values and repeat runs; that is the form CI diffs. With timing on,
//! the wall-clock section is filled in for advisory comparison
//! (`scripts/bench_diff.py` warns on drift but never fails on it).
//!
//! ```text
//! observatory [--out FILE] [--jobs N] [--seed N] [--scale F]
//!             [--corpus DIR] [--no-timing]
//! ```

use std::path::PathBuf;

use regalloc_driver::observatory::{seeded_suites, snapshot, SuiteSpec};
use regalloc_machine::TargetId;

struct Args {
    out: Option<PathBuf>,
    jobs: usize,
    seed: u64,
    scale: f64,
    corpus: Option<PathBuf>,
    timing: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: None,
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed: 1998,
        scale: 0.12,
        corpus: Some(PathBuf::from("tests/corpus/c")),
        timing: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--jobs" => args.jobs = value("--jobs").parse().expect("--jobs N"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed N"),
            "--scale" => args.scale = value("--scale").parse().expect("--scale F"),
            "--corpus" => args.corpus = Some(PathBuf::from(value("--corpus"))),
            "--no-corpus" => args.corpus = None,
            "--no-timing" => args.timing = false,
            "--help" | "-h" => {
                println!(
                    "observatory [--out FILE] [--jobs N] [--seed N] [--scale F] \
                     [--corpus DIR | --no-corpus] [--no-timing]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One suite per corpus C file, compiled through `regalloc-cc`. Sorted
/// by file name so the snapshot's suite order is stable.
fn corpus_suites(dir: &std::path::Path) -> Vec<SuiteSpec> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "c"))
            .collect(),
        Err(e) => {
            eprintln!("observatory: cannot read corpus dir {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let src =
                std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
            let functions = regalloc_cc::compile(&src)
                .unwrap_or_else(|e| panic!("compile {}: {e}", p.display()));
            let stem = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            SuiteSpec {
                name: format!("cc/{stem}"),
                functions,
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let mut suites = seeded_suites(args.seed, args.scale);
    if let Some(dir) = &args.corpus {
        suites.extend(corpus_suites(dir));
    }
    let doc = snapshot(&suites, &TargetId::ALL, args.jobs, args.timing);
    match &args.out {
        None => print!("{doc}"),
        Some(p) => {
            std::fs::write(p, &doc).unwrap_or_else(|e| panic!("write {}: {e}", p.display()));
            eprintln!("observatory: wrote {}", p.display());
        }
    }
}
