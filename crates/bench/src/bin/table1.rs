//! Table 1 — spill-code costs (cycle count and instruction bytes).
//!
//! These are machine-model constants (Pentium timings), printed from
//! `regalloc-x86` exactly as the paper lists them.

use regalloc_x86::{Machine, X86Machine};

fn main() {
    let m = X86Machine::pentium();
    let c = m.spill_costs();
    println!("Table 1. Spill code cost ({}).", m.name());
    println!(
        "{:<18} {:>10} {:>12}",
        "instruction", "cycle cost", "memory cost"
    );
    println!("{:<18} {:>10} {:>12}", "load", c.load_cycles, c.load_bytes);
    println!(
        "{:<18} {:>10} {:>12}",
        "store", c.store_cycles, c.store_bytes
    );
    println!(
        "{:<18} {:>10} {:>12}",
        "rematerialization", c.remat_cycles, c.remat_bytes
    );
    println!("{:<18} {:>10} {:>12}", "copy", c.copy_cycles, c.copy_bytes);
    println!();
    println!("paper: load 1/3, store 1/3, rematerialization 1/3, copy 1/2");
}
