//! §6 text — the x86 IP model vs the uniform RISC model.
//!
//! The paper: "The x86 IP model has only about a quarter of the
//! constraints found in the RISC model. The simplification is due to the
//! fewer number of real registers available for register allocation; the
//! x86 has 6, whereas the RISC has 24." This binary builds both models
//! for the same functions and reports the constraint and variable ratios,
//! plus solve-time ratios over functions both machines solve optimally.

use regalloc_bench::Options;
use regalloc_core::IpAllocator;
use regalloc_workloads::{Benchmark, Suite};
use regalloc_x86::{RiscMachine, X86Machine};

fn main() {
    let o = Options::from_args();
    let x86 = X86Machine::pentium();
    let risc = RiscMachine::new();
    let ip_x86 = IpAllocator::new(&x86).with_solver_config(o.solver());
    let ip_risc = IpAllocator::new(&risc).with_solver_config(o.solver());

    let (mut cx, mut cr, mut vx, mut vr) = (0usize, 0usize, 0usize, 0usize);
    let (mut tx, mut tr) = (0.0_f64, 0.0_f64);
    let mut both_optimal = 0usize;
    let mut n = 0usize;
    for b in Benchmark::all() {
        // A light sample per benchmark: model building dominates.
        let suite = Suite::generate_scaled(b, o.seed, (o.scale * 0.25).max(0.004));
        for f in suite.functions.iter().filter(|f| !f.uses_64bit()) {
            let bx = ip_x86.build_only(f).expect("attempted");
            let br = ip_risc.build_only(f).expect("attempted");
            cx += bx.model.num_rows();
            cr += br.model.num_rows();
            vx += bx.model.num_vars();
            vr += br.model.num_vars();
            n += 1;
            // Timing comparison only on small functions, where both
            // machines' models solve to optimality quickly (the RISC
            // model is ~4x larger, so it dominates the wall clock).
            if f.num_insts() <= 16 {
                let ax = ip_x86.allocate(f).unwrap();
                let ar = ip_risc.allocate(f).unwrap();
                if ax.solved_optimally && ar.solved_optimally {
                    both_optimal += 1;
                    tx += ax.solve_time.as_secs_f64();
                    tr += ar.solve_time.as_secs_f64();
                }
            }
        }
    }

    println!("x86-vs-RISC IP model comparison over {n} functions");
    println!(
        "constraints: x86 {cx}, RISC {cr}  ->  x86/RISC = {:.2}",
        cx as f64 / cr.max(1) as f64
    );
    println!(
        "variables:   x86 {vx}, RISC {vr}  ->  x86/RISC = {:.2}",
        vx as f64 / vr.max(1) as f64
    );
    if both_optimal > 0 {
        println!(
            "optimal solve time ({both_optimal} functions optimal on both): x86 {tx:.2}s, RISC {tr:.2}s -> x86/RISC = {:.2}",
            tx / tr.max(1e-9)
        );
    }
    println!();
    println!("paper: the x86 model has ~1/4 the RISC model's constraints (6 vs 24 registers),");
    println!("       which with O(n^2.5) scaling alone is a ~32x solver speedup.");
}
