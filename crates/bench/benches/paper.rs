//! Criterion benchmarks over the paper's moving parts: model building,
//! LP relaxation, full IP allocation, the coloring baseline, and the
//! x86-vs-RISC model-size effect (the timing counterpart of the
//! `table*`/`fig*` report binaries).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use regalloc_coloring::ColoringAllocator;
use regalloc_core::IpAllocator;
use regalloc_ilp::simplex::solve_lp;
use regalloc_ilp::SolverConfig;
use regalloc_ir::Function;
use regalloc_workloads::{generate_function, GenConfig};
use regalloc_x86::{RiscMachine, X86Machine};

fn sample_function(insts: usize, seed: u64) -> Function {
    let mut rng = SmallRng::seed_from_u64(seed);
    generate_function(
        &format!("bench_{insts}"),
        &mut rng,
        &GenConfig {
            target_insts: insts,
            ..Default::default()
        },
    )
}

fn quick_solver() -> SolverConfig {
    SolverConfig {
        time_limit: Duration::from_millis(300),
        ..Default::default()
    }
}

fn bench_model_build(c: &mut Criterion) {
    let machine = X86Machine::pentium();
    let ip = IpAllocator::new(&machine);
    let mut g = c.benchmark_group("model_build");
    for insts in [10usize, 20, 40] {
        let f = sample_function(insts, 42);
        g.bench_with_input(BenchmarkId::from_parameter(insts), &f, |b, f| {
            b.iter(|| ip.build_only(f).unwrap().model.num_rows())
        });
    }
    g.finish();
}

fn bench_lp_relaxation(c: &mut Criterion) {
    let machine = X86Machine::pentium();
    let ip = IpAllocator::new(&machine);
    let mut g = c.benchmark_group("lp_relaxation");
    g.sample_size(10);
    for insts in [10usize, 20] {
        let f = sample_function(insts, 43);
        let built = ip.build_only(&f).unwrap();
        let n = built.model.num_vars();
        g.bench_with_input(
            BenchmarkId::from_parameter(built.model.num_rows()),
            &built,
            |b, built| {
                b.iter(|| {
                    solve_lp(
                        &built.model,
                        &vec![0.0; n],
                        &vec![1.0; n],
                        1_000_000,
                        regalloc_ilp::Deadline::unlimited(),
                        &mut regalloc_ilp::SolverHealth::default(),
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_ip_allocation(c: &mut Criterion) {
    let machine = X86Machine::pentium();
    let ip = IpAllocator::new(&machine).with_solver_config(quick_solver());
    let mut g = c.benchmark_group("ip_allocate");
    g.sample_size(10);
    for insts in [10usize, 25] {
        let f = sample_function(insts, 44);
        g.bench_with_input(BenchmarkId::from_parameter(insts), &f, |b, f| {
            b.iter(|| ip.allocate(f).unwrap().stats)
        });
    }
    g.finish();
}

fn bench_coloring_allocation(c: &mut Criterion) {
    let machine = X86Machine::pentium();
    let gc = ColoringAllocator::new(&machine);
    let mut g = c.benchmark_group("coloring_allocate");
    for insts in [10usize, 25, 50] {
        let f = sample_function(insts, 44);
        g.bench_with_input(BenchmarkId::from_parameter(insts), &f, |b, f| {
            b.iter(|| gc.allocate(f).unwrap().stats)
        });
    }
    g.finish();
}

fn bench_x86_vs_risc_build(c: &mut Criterion) {
    let x86 = X86Machine::pentium();
    let risc = RiscMachine::new();
    let f = sample_function(20, 45);
    let ipx = IpAllocator::new(&x86);
    let ipr = IpAllocator::new(&risc);
    let mut g = c.benchmark_group("x86_vs_risc_build");
    g.bench_function("x86_6_regs", |b| {
        b.iter(|| ipx.build_only(&f).unwrap().model.num_rows())
    });
    g.bench_function("risc_24_regs", |b| {
        b.iter(|| ipr.build_only(&f).unwrap().model.num_rows())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_model_build,
    bench_lp_relaxation,
    bench_ip_allocation,
    bench_coloring_allocation,
    bench_x86_vs_risc_build
);
criterion_main!(benches);
