//! Exact rational arithmetic over `i128`.
//!
//! The auditor never compares floats: every model coefficient and every
//! certificate multiplier is converted to an exact rational once (the
//! conversion from `f64` is lossless — a finite double *is* a dyadic
//! rational), and all claim checking happens in `Rat`. Arithmetic is
//! checked: any overflow surfaces as `None`, which the checker reports
//! as a malformed certificate rather than silently accepting or
//! rejecting a claim.

use std::cmp::Ordering;
use std::fmt;

/// A rational number `num/den` with `den > 0` and `gcd(|num|, den) = 1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };

    /// An integer as a rational.
    pub fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Normalize `num/den`. `None` when `den` is zero or normalization
    /// overflows.
    fn new(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        let (num, den) = if den < 0 {
            (num.checked_neg()?, den.checked_neg()?)
        } else {
            (num, den)
        };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()) as i128;
        if g <= 1 {
            return Some(Rat { num, den });
        }
        Some(Rat {
            num: num / g,
            den: den / g,
        })
    }

    /// Exact conversion of a finite double via its bit decomposition.
    /// `None` for NaN, infinities, and magnitudes whose dyadic exponent
    /// does not fit the `i128` representation (no certificate produced by
    /// the solver comes close).
    pub fn from_f64(x: f64) -> Option<Rat> {
        if !x.is_finite() {
            return None;
        }
        if x == 0.0 {
            return Some(Rat::ZERO);
        }
        let bits = x.to_bits();
        let neg = bits >> 63 == 1;
        let exp = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (mut mant, mut e) = if exp == 0 {
            (frac as i128, -1074)
        } else {
            ((frac | (1 << 52)) as i128, exp - 1075)
        };
        while mant & 1 == 0 {
            mant >>= 1;
            e += 1;
        }
        let mant = if neg { -mant } else { mant };
        if e >= 0 {
            // mant < 2^53, so shifts up to 74 stay inside i128.
            if e > 74 {
                return None;
            }
            Some(Rat {
                num: mant << e,
                den: 1,
            })
        } else {
            if e < -126 {
                return None;
            }
            // mant is odd, so the fraction is already reduced.
            Some(Rat {
                num: mant,
                den: 1i128 << (-e),
            })
        }
    }

    /// `self + other`, `None` on overflow.
    pub fn checked_add(self, o: Rat) -> Option<Rat> {
        // Reduce by gcd of the denominators first to limit growth.
        let g = gcd(self.den.unsigned_abs(), o.den.unsigned_abs()) as i128;
        let d = o.den / g;
        let num = self
            .num
            .checked_mul(d)?
            .checked_add(o.num.checked_mul(self.den / g)?)?;
        let den = self.den.checked_mul(d)?;
        Rat::new(num, den)
    }

    /// `self - other`, `None` on overflow.
    pub fn checked_sub(self, o: Rat) -> Option<Rat> {
        self.checked_add(Rat {
            num: o.num.checked_neg()?,
            den: o.den,
        })
    }

    /// `self * other`, `None` on overflow.
    pub fn checked_mul(self, o: Rat) -> Option<Rat> {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num.unsigned_abs(), o.den.unsigned_abs()).max(1) as i128;
        let g2 = gcd(o.num.unsigned_abs(), self.den.unsigned_abs()).max(1) as i128;
        let num = (self.num / g1).checked_mul(o.num / g2)?;
        let den = (self.den / g2).checked_mul(o.den / g1)?;
        Rat::new(num, den)
    }

    /// Exact comparison, `None` if the cross-multiplication overflows.
    pub fn try_cmp(self, o: Rat) -> Option<Ordering> {
        Some(
            self.num
                .checked_mul(o.den)?
                .cmp(&o.num.checked_mul(self.den)?),
        )
    }

    /// Sign of the value (`Less` when negative, `Greater` when positive).
    pub fn sign(self) -> Ordering {
        self.num.cmp(&0)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> Option<i128> {
        let q = self.num.div_euclid(self.den);
        if self.num.rem_euclid(self.den) == 0 {
            Some(q)
        } else {
            q.checked_add(1)
        }
    }

    /// The value as an integer when the denominator is one.
    pub fn to_integer(self) -> Option<i128> {
        (self.den == 1).then_some(self.num)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_conversion_is_exact() {
        for (x, num, den) in [
            (0.0, 0, 1),
            (1.0, 1, 1),
            (-1.0, -1, 1),
            (0.5, 1, 2),
            (0.25, 1, 4),
            (-1.5, -3, 2),
            (3.0, 3, 1),
            (6.4e6, 6_400_000, 1),
            (0.1, 3602879701896397, 36028797018963968),
        ] {
            let r = Rat::from_f64(x).expect("finite");
            assert_eq!((r.num, r.den), (num, den), "for {x}");
        }
    }

    #[test]
    fn non_finite_and_extreme_rejected() {
        assert_eq!(Rat::from_f64(f64::NAN), None);
        assert_eq!(Rat::from_f64(f64::INFINITY), None);
        assert_eq!(Rat::from_f64(f64::NEG_INFINITY), None);
        assert_eq!(Rat::from_f64(1e300), None); // exponent too large
        assert_eq!(Rat::from_f64(1e-300), None); // denominator too large
        assert!(Rat::from_f64(-0.0) == Some(Rat::ZERO));
    }

    #[test]
    fn arithmetic_is_exact() {
        let third = Rat::new(1, 3).unwrap();
        let sixth = Rat::new(1, 6).unwrap();
        assert_eq!(third.checked_add(sixth), Rat::new(1, 2));
        assert_eq!(third.checked_sub(sixth), Some(sixth));
        assert_eq!(third.checked_mul(Rat::from_int(6)), Some(Rat::from_int(2)));
        // The float artifact that motivates the whole module: the f64
        // literal 0.1 is strictly above 1/10, and exact arithmetic sees
        // it where f64 comparison cancels it away.
        let a = Rat::from_f64(0.1).unwrap();
        let sum = a.checked_add(a).and_then(|s| s.checked_add(a)).unwrap();
        assert_eq!(
            sum.try_cmp(Rat::new(3, 10).unwrap()),
            Some(Ordering::Greater)
        );
        assert_eq!(sum, a.checked_mul(Rat::from_int(3)).unwrap());
    }

    #[test]
    fn ceil_rounds_toward_positive_infinity() {
        assert_eq!(Rat::new(7, 2).unwrap().ceil(), Some(4));
        assert_eq!(Rat::new(-7, 2).unwrap().ceil(), Some(-3));
        assert_eq!(Rat::from_int(-3).ceil(), Some(-3));
        assert_eq!(Rat::ZERO.ceil(), Some(0));
    }

    #[test]
    fn overflow_is_none_not_wrong() {
        let big = Rat::from_int(i128::MAX);
        assert_eq!(big.checked_add(Rat::from_int(1)), None);
        assert_eq!(big.checked_mul(Rat::from_int(2)), None);
        let tiny = Rat::new(1, i128::MAX).unwrap();
        assert_eq!(tiny.checked_add(Rat::new(1, i128::MAX - 2).unwrap()), None);
    }

    #[test]
    fn comparison_and_sign() {
        let a = Rat::new(1, 3).unwrap();
        let b = Rat::new(333, 1000).unwrap();
        assert_eq!(a.try_cmp(b), Some(Ordering::Greater));
        assert_eq!(a.sign(), Ordering::Greater);
        assert_eq!(Rat::from_int(-2).sign(), Ordering::Less);
        assert_eq!(Rat::ZERO.sign(), Ordering::Equal);
    }
}
