//! Independent exact-arithmetic auditor for solver proof certificates.
//!
//! The branch-and-bound solver in `regalloc-ilp` can attach a
//! [`Certificate`] to a completed solve: per leaf of the search tree, a
//! replayable path (branching decisions interleaved with presolve
//! deductions) and a claim — Lagrangian multipliers bounding the leaf's
//! box below the incumbent, Farkas multipliers refuting the box, or a
//! propagation witness. This crate re-checks the whole proof without
//! trusting any part of the solver:
//!
//! 1. **Structure** — every index in range, every multiplier vector the
//!    right length, every float convertible to an exact rational
//!    ([`rat::Rat`], `i128`-backed; `A009` on any damage or overflow).
//! 2. **Incumbent** — the claimed assignment satisfies every row and
//!    fixing exactly (`A004`) and its exact objective equals the claimed
//!    value (`A005`).
//! 3. **Coverage** — the leaves' decision trails form a complete binary
//!    tree, so the leaf boxes cover the whole 0-1 cube (`A006`).
//! 4. **Replay** — each leaf's box is rebuilt from the model alone;
//!    every recorded deduction must be forced by the bounds current at
//!    that point (`A007`).
//! 5. **Claims** — dual signs (`A001`), the rounded exact dual bound
//!    against the incumbent (`A002`), strict Farkas positivity (`A003`),
//!    and propagation witnesses (`A007`), all in exact rationals. A
//!    claim over an empty replayed box is vacuously valid.
//!
//! Together these imply the audited solve's headline claim: `Optimal`
//! means *no integer point anywhere in the cube beats the incumbent*,
//! and `Infeasible` means *no integer point exists*. Findings are
//! ordinary [`Diagnostic`]s (the `A0xx` family) so they flow through the
//! existing text/JSON/SARIF reporting; the anchor coordinate is reused
//! as `b0:<leaf index>`.

mod rat;

pub use rat::Rat;

use regalloc_ilp::cert::{Certificate, Claim, Step, Witness};
use regalloc_ilp::model::{Model, Sense, VarId};
use regalloc_ilp::{Solution, Status};
use regalloc_lint::diag::{
    Diagnostic, A_COVERAGE_GAP, A_DEDUCTION_UNJUSTIFIED, A_DUAL_SIGN, A_FARKAS_NOT_POSITIVE,
    A_INCUMBENT_INFEASIBLE, A_MALFORMED_CERTIFICATE, A_MISSING_CERTIFICATE, A_OBJECTIVE_MISMATCH,
    A_WEAK_BOUND,
};
use std::cmp::Ordering;

/// The auditor's conclusion about one solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Every claim checked out; the solve's status is proved.
    Verified,
    /// At least one claim failed; the certificate proves nothing.
    Rejected,
    /// The solve claimed a proved status but attached no certificate.
    Missing,
}

/// The result of auditing one solve or certificate.
#[derive(Clone, Debug)]
pub struct AuditOutcome {
    /// Overall conclusion.
    pub verdict: Verdict,
    /// Findings (empty exactly when [`Verdict::Verified`]).
    pub diagnostics: Vec<Diagnostic>,
    /// Leaves whose claim was checked (including vacuously).
    pub leaves_checked: u64,
}

impl AuditOutcome {
    /// Slug of the first finding, for event streams and metrics.
    pub fn primary_code(&self) -> Option<&'static str> {
        self.diagnostics.first().map(|d| d.code.slug)
    }

    fn verified(leaves_checked: u64) -> AuditOutcome {
        AuditOutcome {
            verdict: Verdict::Verified,
            diagnostics: Vec::new(),
            leaves_checked,
        }
    }
}

/// Stop piling up findings past the point of usefulness.
const MAX_FINDINGS: usize = 32;

/// Audit the certificate attached to a solve against the model it
/// claims to prove.
///
/// [`Status::Optimal`] and [`Status::Infeasible`] are proof claims and
/// require a certificate whose incumbent matches the reported solution
/// ([`Verdict::Missing`] / `A008` otherwise). Other statuses claim no
/// proof and are vacuously verified.
pub fn audit_solution(model: &Model, sol: &Solution) -> AuditOutcome {
    let cert = match (sol.status, &sol.certificate) {
        (Status::Optimal | Status::Infeasible, None) => {
            return AuditOutcome {
                verdict: Verdict::Missing,
                diagnostics: vec![Diagnostic::error(
                    A_MISSING_CERTIFICATE,
                    0,
                    0,
                    format!("{:?} claim has no certificate attached", sol.status),
                )],
                leaves_checked: 0,
            };
        }
        (Status::Optimal | Status::Infeasible, Some(cert)) => cert,
        _ => return AuditOutcome::verified(0),
    };
    // The certificate must prove the *reported* solution, not merely
    // some solution: a mismatch means the proof is about something else.
    let consistent = match (sol.status, &cert.incumbent) {
        (Status::Optimal, Some((values, obj))) => values == &sol.values && *obj == sol.objective,
        (Status::Infeasible, None) => true,
        _ => false,
    };
    if !consistent {
        return AuditOutcome {
            verdict: Verdict::Rejected,
            diagnostics: vec![Diagnostic::error(
                A_OBJECTIVE_MISMATCH,
                0,
                0,
                "certificate incumbent does not match the reported solution",
            )],
            leaves_checked: 0,
        };
    }
    audit_certificate(model, cert)
}

/// Audit a bare certificate against a model.
pub fn audit_certificate(model: &Model, cert: &Certificate) -> AuditOutcome {
    let mut diags = Vec::new();
    let exact = match ExactModel::convert(model) {
        Some(e) => e,
        None => {
            return AuditOutcome {
                verdict: Verdict::Rejected,
                diagnostics: vec![Diagnostic::error(
                    A_MALFORMED_CERTIFICATE,
                    0,
                    0,
                    "model data is not exactly representable; cannot audit",
                )],
                leaves_checked: 0,
            };
        }
    };
    check_structure(model, cert, &mut diags);
    if diags.is_empty() {
        check_incumbent(model, &exact, cert, &mut diags);
        check_coverage(model, cert, &mut diags);
    }
    let mut leaves_checked = 0u64;
    if diags.is_empty() {
        let incumbent_obj = cert
            .incumbent
            .as_ref()
            .and_then(|(values, _)| exact.objective_int(values));
        for (li, leaf) in cert.leaves.iter().enumerate() {
            check_leaf(model, &exact, li, leaf, incumbent_obj, &mut diags);
            leaves_checked += 1;
            if diags.len() >= MAX_FINDINGS {
                break;
            }
        }
    }
    AuditOutcome {
        verdict: if diags.is_empty() {
            Verdict::Verified
        } else {
            Verdict::Rejected
        },
        diagnostics: diags,
        leaves_checked,
    }
}

/// One constraint row in exact arithmetic: (coeffs as (var index, a),
/// sense, rhs).
type ExactRow = (Vec<(usize, Rat)>, Sense, Rat);

/// Model data converted to exact rationals once, up front.
struct ExactModel {
    costs: Vec<Rat>,
    rows: Vec<ExactRow>,
    integral_costs: bool,
}

impl ExactModel {
    fn convert(model: &Model) -> Option<ExactModel> {
        let costs = model
            .costs()
            .iter()
            .map(|&c| Rat::from_f64(c))
            .collect::<Option<Vec<_>>>()?;
        let rows = model
            .rows()
            .iter()
            .map(|row| {
                let coeffs = row
                    .coeffs
                    .iter()
                    .map(|&(v, c)| Some((v.index(), Rat::from_f64(c)?)))
                    .collect::<Option<Vec<_>>>()?;
                Some((coeffs, row.sense, Rat::from_f64(row.rhs)?))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ExactModel {
            costs,
            rows,
            integral_costs: model.has_integral_costs(),
        })
    }

    /// Exact integral objective of an assignment; `None` when a cost is
    /// fractional or the sum overflows.
    fn objective_int(&self, values: &[bool]) -> Option<i128> {
        let mut sum = Rat::ZERO;
        for (c, &v) in self.costs.iter().zip(values) {
            if v {
                sum = sum.checked_add(*c)?;
            }
        }
        sum.to_integer()
    }
}

fn check_structure(model: &Model, cert: &Certificate, diags: &mut Vec<Diagnostic>) {
    let n = model.num_vars();
    let m = model.num_rows();
    if let Some((values, obj)) = &cert.incumbent {
        if values.len() != n {
            diags.push(Diagnostic::error(
                A_MALFORMED_CERTIFICATE,
                0,
                0,
                format!(
                    "incumbent has {} values, model has {n} variables",
                    values.len()
                ),
            ));
        }
        if !obj.is_finite() {
            diags.push(Diagnostic::error(
                A_MALFORMED_CERTIFICATE,
                0,
                0,
                "incumbent objective is not finite",
            ));
        }
    }
    if cert.leaves.is_empty() {
        diags.push(Diagnostic::error(
            A_MALFORMED_CERTIFICATE,
            0,
            0,
            "certificate has no leaves",
        ));
    }
    for (li, leaf) in cert.leaves.iter().enumerate() {
        if diags.len() >= MAX_FINDINGS {
            return;
        }
        let bad = |msg: String| Diagnostic::error(A_MALFORMED_CERTIFICATE, 0, li, msg);
        for st in &leaf.steps {
            let (row, var) = match *st {
                Step::Decision { var, .. } => (None, var),
                Step::Deduce { row, var, .. } => (Some(row), var),
            };
            if var as usize >= n {
                diags.push(bad(format!("step references variable {var} out of range")));
            }
            if let Some(r) = row {
                if r as usize >= m {
                    diags.push(bad(format!("step references row {r} out of range")));
                }
            }
        }
        match &leaf.claim {
            Claim::Bound { duals } => {
                if cert.incumbent.is_none() {
                    diags.push(bad("bound claim in a certificate with no incumbent".into()));
                }
                check_dual_vector(duals, m, li, diags);
            }
            Claim::Farkas { duals } => check_dual_vector(duals, m, li, diags),
            Claim::PropInfeasible { witness } => match *witness {
                Witness::Row(r) => {
                    if r as usize >= m {
                        diags.push(bad(format!("witness row {r} out of range")));
                    }
                }
                Witness::Fix(v) => {
                    if v as usize >= n {
                        diags.push(bad(format!("witness variable {v} out of range")));
                    } else if model.fixed(VarId(v)).is_none() {
                        diags.push(bad(format!("witness variable {v} has no declared fixing")));
                    }
                }
            },
        }
    }
}

fn check_dual_vector(duals: &[f64], m: usize, li: usize, diags: &mut Vec<Diagnostic>) {
    if duals.len() != m {
        diags.push(Diagnostic::error(
            A_MALFORMED_CERTIFICATE,
            0,
            li,
            format!("claim has {} multipliers, model has {m} rows", duals.len()),
        ));
        return;
    }
    if let Some((ri, d)) = duals
        .iter()
        .enumerate()
        .find(|(_, d)| Rat::from_f64(**d).is_none())
    {
        diags.push(Diagnostic::error(
            A_MALFORMED_CERTIFICATE,
            0,
            li,
            format!("multiplier for row {ri} ({d}) is not exactly representable"),
        ));
    }
}

fn check_incumbent(
    model: &Model,
    exact: &ExactModel,
    cert: &Certificate,
    diags: &mut Vec<Diagnostic>,
) {
    let Some((values, claimed_obj)) = &cert.incumbent else {
        return;
    };
    // Exact row satisfaction: activity of the 0-1 assignment is a plain
    // rational sum, compared against the rhs without tolerance.
    for (ri, (coeffs, sense, rhs)) in exact.rows.iter().enumerate() {
        let mut act = Rat::ZERO;
        let mut ok = true;
        for &(j, a) in coeffs {
            if values[j] {
                act = match act.checked_add(a) {
                    Some(s) => s,
                    None => {
                        ok = false;
                        break;
                    }
                };
            }
        }
        let sat = ok
            && match (act.try_cmp(*rhs), sense) {
                (Some(c), Sense::Le) => c != Ordering::Greater,
                (Some(c), Sense::Ge) => c != Ordering::Less,
                (Some(c), Sense::Eq) => c == Ordering::Equal,
                (None, _) => false,
            };
        if !sat {
            diags.push(Diagnostic::error(
                A_INCUMBENT_INFEASIBLE,
                0,
                0,
                format!("incumbent violates row {ri} ({})", sense_str(*sense)),
            ));
            if diags.len() >= MAX_FINDINGS {
                return;
            }
        }
    }
    for (j, &v) in values.iter().enumerate().take(model.num_vars()) {
        if let Some(f) = model.fixed(VarId(j as u32)) {
            if v != f {
                diags.push(Diagnostic::error(
                    A_INCUMBENT_INFEASIBLE,
                    0,
                    0,
                    format!("incumbent violates the declared fixing of variable {j}"),
                ));
                if diags.len() >= MAX_FINDINGS {
                    return;
                }
            }
        }
    }
    // Exact objective vs the claimed value.
    let mut sum = Rat::ZERO;
    let mut ok = true;
    for (c, &v) in exact.costs.iter().zip(values.iter()) {
        if v {
            sum = match sum.checked_add(*c) {
                Some(s) => s,
                None => {
                    ok = false;
                    break;
                }
            };
        }
    }
    let claimed = Rat::from_f64(*claimed_obj);
    let matches = ok && claimed.is_some_and(|cl| sum.try_cmp(cl) == Some(Ordering::Equal));
    if !matches {
        diags.push(Diagnostic::error(
            A_OBJECTIVE_MISMATCH,
            0,
            0,
            format!("incumbent's exact objective {sum} differs from the claimed {claimed_obj}"),
        ));
    }
}

fn sense_str(s: Sense) -> &'static str {
    match s {
        Sense::Le => "<=",
        Sense::Ge => ">=",
        Sense::Eq => "=",
    }
}

/// Decision subsequence of a leaf's trail.
fn decisions(leaf_steps: &[Step]) -> Vec<(u32, bool)> {
    leaf_steps
        .iter()
        .filter_map(|st| match *st {
            Step::Decision { var, value } => Some((var, value)),
            Step::Deduce { .. } => None,
        })
        .collect()
}

/// The leaves' decision trails must form a complete binary tree: at
/// every interior trie node all leaves branch on the same variable and
/// both values are present. A leaf whose decisions are exhausted at a
/// node covers that node's whole region by itself.
fn check_coverage(model: &Model, cert: &Certificate, diags: &mut Vec<Diagnostic>) {
    let decs: Vec<Vec<(u32, bool)>> = cert.leaves.iter().map(|l| decisions(&l.steps)).collect();
    let idxs: Vec<usize> = (0..decs.len()).collect();
    if let Err((leaf, msg)) = coverage_rec(&decs, idxs, 0, model.num_vars()) {
        diags.push(Diagnostic::error(A_COVERAGE_GAP, 0, leaf, msg));
    }
}

fn coverage_rec(
    decs: &[Vec<(u32, bool)>],
    idxs: Vec<usize>,
    depth: usize,
    max_depth: usize,
) -> Result<(), (usize, String)> {
    let Some(&first) = idxs.first() else {
        return Err((0, "no leaf covers a branch region".into()));
    };
    // An exhausted leaf's box contains the whole region: its claim
    // closes it regardless of what the sibling leaves say.
    if idxs.iter().any(|&i| decs[i].len() == depth) {
        return Ok(());
    }
    if depth >= max_depth {
        return Err((
            first,
            "decision trail longer than the variable count".into(),
        ));
    }
    let var = decs[first][depth].0;
    if let Some(&other) = idxs.iter().find(|&&i| decs[i][depth].0 != var) {
        return Err((
            other,
            format!(
                "leaves branch on different variables ({} vs {var}) at depth {depth}",
                decs[other][depth].0
            ),
        ));
    }
    let (ones, zeros): (Vec<usize>, Vec<usize>) = idxs.into_iter().partition(|&i| decs[i][depth].1);
    for (side, group) in [("1", &ones), ("0", &zeros)] {
        if group.is_empty() {
            return Err((
                first,
                format!("no leaf covers the x{var} = {side} side at depth {depth}"),
            ));
        }
    }
    coverage_rec(decs, ones, depth + 1, max_depth)?;
    coverage_rec(decs, zeros, depth + 1, max_depth)
}

/// Replay one leaf's trail and check its claim.
fn check_leaf(
    model: &Model,
    exact: &ExactModel,
    li: usize,
    leaf: &regalloc_ilp::cert::NodeCert,
    incumbent_obj: Option<i128>,
    diags: &mut Vec<Diagnostic>,
) {
    let n = model.num_vars();
    // The leaf box, rebuilt from the model alone: start at [0,1]^n,
    // apply the declared fixings, then replay the trail. Intersection
    // semantics throughout — bounds only ever tighten, and a crossed
    // pair (lb > ub) marks the box empty, making every later step and
    // the claim itself vacuously valid.
    let mut lb = vec![0u8; n];
    let mut ub = vec![1u8; n];
    for j in 0..n {
        if let Some(f) = model.fixed(VarId(j as u32)) {
            let v = f as u8;
            lb[j] = lb[j].max(v);
            ub[j] = ub[j].min(v);
        }
    }
    let empty = |lb: &[u8], ub: &[u8]| lb.iter().zip(ub).any(|(l, u)| l > u);
    for st in &leaf.steps {
        if empty(&lb, &ub) {
            return; // vacuous: the region holds no integer point
        }
        match *st {
            Step::Decision { var, value } => {
                let j = var as usize;
                let v = value as u8;
                lb[j] = lb[j].max(v);
                ub[j] = ub[j].min(v);
            }
            Step::Deduce { row, var, value } => {
                let j = var as usize;
                let pinned = !value as u8;
                // Justified iff pinning the variable at the opposite
                // value makes the row exactly unsatisfiable over the
                // current box (trivially so when the box already
                // excludes that value).
                if pinned >= lb[j] && pinned <= ub[j] {
                    match row_refuted(exact, row as usize, &lb, &ub, Some((j, pinned))) {
                        Some(true) => {}
                        Some(false) => {
                            diags.push(Diagnostic::error(
                                A_DEDUCTION_UNJUSTIFIED,
                                0,
                                li,
                                format!(
                                    "deduction x{var} = {} is not forced by row {row}",
                                    value as u8
                                ),
                            ));
                            return;
                        }
                        None => {
                            diags.push(overflow_diag(li));
                            return;
                        }
                    }
                }
                let v = value as u8;
                lb[j] = lb[j].max(v);
                ub[j] = ub[j].min(v);
            }
        }
    }
    if empty(&lb, &ub) {
        return;
    }
    match &leaf.claim {
        Claim::Bound { duals } => {
            if !exact.integral_costs {
                diags.push(
                    Diagnostic::error(
                        A_MALFORMED_CERTIFICATE,
                        0,
                        li,
                        "bound claim requires integral costs",
                    )
                    .with_note("the rounded dual bound is only sound for integer objectives"),
                );
                return;
            }
            let Some(inc) = incumbent_obj else {
                diags.push(overflow_diag(li));
                return;
            };
            match dual_bound(exact, duals, &lb, &ub, true, li, diags) {
                Some(Some(bound)) => {
                    let Some(ceil) = bound.ceil() else {
                        diags.push(overflow_diag(li));
                        return;
                    };
                    if ceil < inc {
                        diags.push(Diagnostic::error(
                            A_WEAK_BOUND,
                            0,
                            li,
                            format!("exact dual bound {bound} rounds to {ceil}, below the incumbent {inc}"),
                        ));
                    }
                }
                Some(None) => {} // sign violation already reported
                None => diags.push(overflow_diag(li)),
            }
        }
        Claim::Farkas { duals } => match dual_bound(exact, duals, &lb, &ub, false, li, diags) {
            Some(Some(bound)) => {
                if bound.sign() != Ordering::Greater {
                    diags.push(Diagnostic::error(
                        A_FARKAS_NOT_POSITIVE,
                        0,
                        li,
                        format!("Farkas bound {bound} is not strictly positive"),
                    ));
                }
            }
            Some(None) => {}
            None => diags.push(overflow_diag(li)),
        },
        Claim::PropInfeasible { witness } => match *witness {
            Witness::Row(r) => match row_refuted(exact, r as usize, &lb, &ub, None) {
                Some(true) => {}
                Some(false) => diags.push(Diagnostic::error(
                    A_DEDUCTION_UNJUSTIFIED,
                    0,
                    li,
                    format!("witness row {r} is satisfiable over the leaf box"),
                )),
                None => diags.push(overflow_diag(li)),
            },
            Witness::Fix(v) => {
                // A genuine fixing conflict empties the replayed box (the
                // fixing was applied first), so reaching here with a
                // non-empty box refutes the witness.
                diags.push(Diagnostic::error(
                    A_DEDUCTION_UNJUSTIFIED,
                    0,
                    li,
                    format!("the fixing of x{v} does not conflict with the leaf box"),
                ));
            }
        },
    }
}

fn overflow_diag(li: usize) -> Diagnostic {
    Diagnostic::error(
        A_MALFORMED_CERTIFICATE,
        0,
        li,
        "rational arithmetic overflowed while checking the claim",
    )
}

/// Exact min/max activity of a row over the box, with an optional
/// variable pinned. `Some(true)` when the row cannot be satisfied.
fn row_refuted(
    exact: &ExactModel,
    ri: usize,
    lb: &[u8],
    ub: &[u8],
    pin: Option<(usize, u8)>,
) -> Option<bool> {
    let (coeffs, sense, rhs) = &exact.rows[ri];
    let mut min_act = Rat::ZERO;
    let mut max_act = Rat::ZERO;
    for &(j, a) in coeffs {
        let (l, u) = match pin {
            Some((pj, pv)) if pj == j => (pv, pv),
            _ => (lb[j], ub[j]),
        };
        let (lo, hi) = if a.sign() == Ordering::Less {
            (u, l)
        } else {
            (l, u)
        };
        min_act = min_act.checked_add(a.checked_mul(Rat::from_int(lo as i128))?)?;
        max_act = max_act.checked_add(a.checked_mul(Rat::from_int(hi as i128))?)?;
    }
    let need_le = matches!(sense, Sense::Le | Sense::Eq);
    let need_ge = matches!(sense, Sense::Ge | Sense::Eq);
    Some(
        (need_le && min_act.try_cmp(*rhs)? == Ordering::Greater)
            || (need_ge && max_act.try_cmp(*rhs)? == Ordering::Less),
    )
}

/// The exact Lagrangian dual bound of the multipliers over the box:
///
/// `L(y) = Σᵢ yᵢ·bᵢ + Σⱼ min over the box of dⱼ·xⱼ`, `dⱼ = cⱼ − Σᵢ yᵢ·aᵢⱼ`
///
/// (costs dropped when `with_costs` is false — the Farkas form). Any `y`
/// respecting the sign conditions (`yᵢ ≤ 0` for `≤` rows, `yᵢ ≥ 0` for
/// `≥` rows, free for `=`) makes `L(y)` a true lower bound on the
/// objective of every feasible point in the box.
///
/// Returns `None` on overflow, `Some(None)` after reporting a sign
/// violation, `Some(Some(bound))` otherwise.
#[allow(clippy::too_many_arguments)]
fn dual_bound(
    exact: &ExactModel,
    duals: &[f64],
    lb: &[u8],
    ub: &[u8],
    with_costs: bool,
    li: usize,
    diags: &mut Vec<Diagnostic>,
) -> Option<Option<Rat>> {
    let y: Vec<Rat> = duals
        .iter()
        .map(|&d| Rat::from_f64(d))
        .collect::<Option<Vec<_>>>()?;
    for (ri, (_, sense, _)) in exact.rows.iter().enumerate() {
        let bad = match sense {
            Sense::Le => y[ri].sign() == Ordering::Greater,
            Sense::Ge => y[ri].sign() == Ordering::Less,
            Sense::Eq => false,
        };
        if bad {
            diags.push(Diagnostic::error(
                A_DUAL_SIGN,
                0,
                li,
                format!(
                    "multiplier {} for row {ri} ({}) violates its sign condition",
                    y[ri],
                    sense_str(*sense)
                ),
            ));
            return Some(None);
        }
    }
    // Reduced costs d = c − Aᵀy, accumulated sparsely.
    let n = lb.len();
    let mut d: Vec<Rat> = if with_costs {
        exact.costs.clone()
    } else {
        vec![Rat::ZERO; n]
    };
    let mut bound = Rat::ZERO;
    for (ri, (coeffs, _, rhs)) in exact.rows.iter().enumerate() {
        bound = bound.checked_add(y[ri].checked_mul(*rhs)?)?;
        if y[ri].sign() == Ordering::Equal {
            continue;
        }
        for &(j, a) in coeffs {
            d[j] = d[j].checked_sub(y[ri].checked_mul(a)?)?;
        }
    }
    for j in 0..n {
        let contrib = if lb[j] == ub[j] {
            if lb[j] == 1 {
                d[j]
            } else {
                Rat::ZERO
            }
        } else if d[j].sign() == Ordering::Less {
            d[j] // min(0, d) for a free 0-1 variable
        } else {
            Rat::ZERO
        };
        bound = bound.checked_add(contrib)?;
    }
    Some(Some(bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ilp::cert::NodeCert;
    use regalloc_ilp::{solve, SolverConfig};
    use regalloc_lint::diag::Code;

    fn cert_cfg() -> SolverConfig {
        SolverConfig {
            emit_certificates: true,
            ..SolverConfig::default()
        }
    }

    /// Odd-cycle packing with cost -2 per vertex: branches for real.
    fn cycle_model(n: usize) -> Model {
        let mut m = Model::new();
        let v: Vec<_> = (0..n).map(|i| m.add_var(-2.0, format!("x{i}"))).collect();
        for i in 0..n {
            m.add_le(vec![(v[i], 1.0), (v[(i + 1) % n], 1.0)], 1.0);
        }
        m
    }

    fn solved_cert(m: &Model) -> (Solution, Certificate) {
        let sol = solve(m, &cert_cfg(), None);
        let cert = sol.certificate.clone().expect("certificate");
        (sol, cert)
    }

    fn codes(out: &AuditOutcome) -> Vec<Code> {
        out.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn honest_optimal_certificate_verifies() {
        let m = cycle_model(3);
        let (sol, _) = solved_cert(&m);
        let out = audit_solution(&m, &sol);
        assert_eq!(out.verdict, Verdict::Verified, "{:?}", out.diagnostics);
        assert!(out.leaves_checked > 0);
    }

    #[test]
    fn honest_infeasible_certificate_verifies() {
        let mut m = Model::new();
        let a = m.add_var(0.0, "a");
        let b = m.add_var(0.0, "b");
        m.add_ge(vec![(a, 1.0), (b, 1.0)], 2.0);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 1.0);
        let (sol, _) = solved_cert(&m);
        assert_eq!(sol.status, Status::Infeasible);
        let out = audit_solution(&m, &sol);
        assert_eq!(out.verdict, Verdict::Verified, "{:?}", out.diagnostics);
    }

    #[test]
    fn missing_certificate_flagged() {
        let m = cycle_model(3);
        let mut sol = solve(&m, &SolverConfig::default(), None);
        assert!(sol.certificate.is_none());
        let out = audit_solution(&m, &sol);
        assert_eq!(out.verdict, Verdict::Missing);
        // Non-proof statuses claim nothing.
        sol.status = Status::Feasible;
        assert_eq!(audit_solution(&m, &sol).verdict, Verdict::Verified);
    }

    #[test]
    fn forged_objective_rejected() {
        let m = cycle_model(3);
        let (_, mut cert) = solved_cert(&m);
        // Claim one better than the true optimum.
        let (_, obj) = cert.incumbent.as_mut().unwrap();
        *obj -= 1.0;
        let out = audit_certificate(&m, &cert);
        assert_eq!(out.verdict, Verdict::Rejected);
        // The forged objective no longer matches the incumbent's exact
        // value, and the bound leaves no longer dominate it.
        assert!(codes(&out).contains(&regalloc_lint::diag::A_OBJECTIVE_MISMATCH));
    }

    #[test]
    fn forged_incumbent_value_rejected() {
        let m = cycle_model(3);
        let (_, mut cert) = solved_cert(&m);
        let (values, _) = cert.incumbent.as_mut().unwrap();
        // Flip the selected vertex's neighbour on: violates an edge row.
        let on = values.iter().position(|&b| b).unwrap();
        values[(on + 1) % 3] = true;
        let out = audit_certificate(&m, &cert);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert!(codes(&out).contains(&regalloc_lint::diag::A_INCUMBENT_INFEASIBLE));
    }

    #[test]
    fn dropped_leaf_is_a_coverage_gap() {
        let m = cycle_model(3);
        let (_, mut cert) = solved_cert(&m);
        let with_decision = cert
            .leaves
            .iter()
            .position(|l| decisions(&l.steps).len() == 1)
            .expect("the root branch produces depth-1 leaves");
        cert.leaves.remove(with_decision);
        let out = audit_certificate(&m, &cert);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert!(codes(&out).contains(&regalloc_lint::diag::A_COVERAGE_GAP));
    }

    #[test]
    fn wrong_signed_dual_rejected() {
        let m = cycle_model(3);
        let (_, mut cert) = solved_cert(&m);
        let bound_leaf = cert
            .leaves
            .iter_mut()
            .find_map(|l| match &mut l.claim {
                Claim::Bound { duals } => Some(duals),
                _ => None,
            })
            .expect("a bound leaf");
        // Rows are all <=: a large positive multiplier breaks the sign
        // condition (and would otherwise inflate the bound arbitrarily).
        bound_leaf[0] = 1000.0;
        let out = audit_certificate(&m, &cert);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert!(codes(&out).contains(&regalloc_lint::diag::A_DUAL_SIGN));
    }

    #[test]
    fn zeroed_duals_give_weak_bound() {
        let m = cycle_model(3);
        let (_, mut cert) = solved_cert(&m);
        for l in &mut cert.leaves {
            if let Claim::Bound { duals } = &mut l.claim {
                for d in duals.iter_mut() {
                    *d = 0.0;
                }
            }
        }
        // With y = 0 the bound is Σ min(0, c_j) = -6 < incumbent -4.
        let out = audit_certificate(&m, &cert);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert!(codes(&out).contains(&regalloc_lint::diag::A_WEAK_BOUND));
    }

    #[test]
    fn bogus_deduction_rejected() {
        let m = cycle_model(3);
        let (_, mut cert) = solved_cert(&m);
        // Claim row 0 forces x2 = 1 at the root: it does not.
        cert.leaves[0].steps.insert(
            0,
            Step::Deduce {
                row: 0,
                var: 2,
                value: true,
            },
        );
        let out = audit_certificate(&m, &cert);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert!(codes(&out).contains(&regalloc_lint::diag::A_DEDUCTION_UNJUSTIFIED));
    }

    #[test]
    fn unsatisfiable_farkas_rejected() {
        let mut m = Model::new();
        let a = m.add_var(0.0, "a");
        let b = m.add_var(0.0, "b");
        m.add_ge(vec![(a, 1.0), (b, 1.0)], 2.0);
        m.add_le(vec![(a, 1.0), (b, 1.0)], 1.0);
        let (_, mut cert) = solved_cert(&m);
        for l in &mut cert.leaves {
            if let Claim::Farkas { duals } = &mut l.claim {
                for d in duals.iter_mut() {
                    *d = 0.0; // L(0) = 0, not strictly positive
                }
            } else {
                l.claim = Claim::Farkas {
                    duals: vec![0.0; 2],
                };
            }
        }
        let out = audit_certificate(&m, &cert);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert!(codes(&out).contains(&regalloc_lint::diag::A_FARKAS_NOT_POSITIVE));
    }

    #[test]
    fn structural_damage_rejected() {
        let m = cycle_model(3);
        let (_, cert) = solved_cert(&m);

        let mut short = cert.clone();
        if let Claim::Bound { duals } | Claim::Farkas { duals } = &mut short.leaves[0].claim {
            duals.pop();
        }
        assert_eq!(audit_certificate(&m, &short).verdict, Verdict::Rejected);

        let mut oob = cert.clone();
        oob.leaves[0].steps.push(Step::Decision {
            var: 99,
            value: true,
        });
        assert_eq!(audit_certificate(&m, &oob).verdict, Verdict::Rejected);

        let mut bare = cert.clone();
        bare.leaves.clear();
        assert_eq!(audit_certificate(&m, &bare).verdict, Verdict::Rejected);

        let mut nan = cert;
        if let Claim::Bound { duals } | Claim::Farkas { duals } = &mut nan.leaves[0].claim {
            duals[0] = f64::NAN;
        }
        let out = audit_certificate(&m, &nan);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert!(codes(&out).contains(&regalloc_lint::diag::A_MALFORMED_CERTIFICATE));
    }

    #[test]
    fn bound_claim_without_incumbent_rejected() {
        let m = cycle_model(3);
        let (_, mut cert) = solved_cert(&m);
        cert.incumbent = None;
        let out = audit_certificate(&m, &cert);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert!(codes(&out).contains(&regalloc_lint::diag::A_MALFORMED_CERTIFICATE));
    }

    #[test]
    fn incumbent_mismatch_with_solution_rejected() {
        let m = cycle_model(3);
        let (mut sol, _) = solved_cert(&m);
        sol.objective += 2.0; // reported solution no longer matches cert
        let out = audit_solution(&m, &sol);
        assert_eq!(out.verdict, Verdict::Rejected);
        assert_eq!(out.primary_code(), Some("objective-mismatch"));
    }

    #[test]
    fn empty_leaf_boxes_are_vacuous_but_coverage_still_binds() {
        // A certificate may contain leaves whose replayed box is empty
        // (decisions crossing a fixing); their claims are vacuous, and
        // verification hinges on coverage plus the remaining leaves.
        let mut m = Model::new();
        let a = m.add_var(1.0, "a");
        m.fix(a, true);
        let forged = Certificate {
            incumbent: Some((vec![true], 1.0)),
            leaves: vec![
                NodeCert {
                    steps: vec![Step::Decision {
                        var: 0,
                        value: false,
                    }],
                    claim: Claim::PropInfeasible {
                        witness: Witness::Fix(0),
                    },
                },
                NodeCert {
                    steps: vec![Step::Decision {
                        var: 0,
                        value: true,
                    }],
                    claim: Claim::Bound { duals: vec![] },
                },
            ],
        };
        assert_eq!(audit_certificate(&m, &forged).verdict, Verdict::Verified);
    }

    #[test]
    fn five_cycle_stress_verifies() {
        let m = cycle_model(5);
        let (sol, _) = solved_cert(&m);
        assert_eq!(sol.status, Status::Optimal);
        let out = audit_solution(&m, &sol);
        assert_eq!(out.verdict, Verdict::Verified, "{:?}", out.diagnostics);
    }
}
