//! Budget-governor edge cases at the `run_suite` level: the governor
//! must degrade gracefully (demote, never refuse or underflow) when the
//! global budget is absurdly small, empty, or smaller than a single
//! function's ask.

use std::time::Duration;

use regalloc_driver::{run_suite, CacheMode, DriverConfig};
use regalloc_ilp::SolverConfig;
use regalloc_workloads::{Benchmark, Suite};

fn tight_cfg() -> DriverConfig {
    DriverConfig {
        target: regalloc_machine::TargetId::X86Pentium,
        jobs: 2,
        solver: SolverConfig {
            time_limit: Duration::from_secs(300),
            lp_iter_limit: 2_000,
            node_limit: 16,
            max_rows: 600,
            ..SolverConfig::default()
        },
        function_budget: Duration::from_secs(2),
        cache: CacheMode::Off,
        equiv_runs: 0,
        warm_starts: false,
        ..DriverConfig::default()
    }
}

fn workload(n: usize) -> Vec<regalloc_ir::Function> {
    let mut funcs = Suite::generate(Benchmark::Eqntott, 77).functions;
    funcs.truncate(n);
    funcs
}

#[test]
fn zero_function_suite_is_a_clean_noop() {
    let cfg = DriverConfig {
        global_budget: Some(Duration::from_secs(1)),
        ..tight_cfg()
    };
    let out = run_suite(&[], &cfg);
    assert!(out.results.is_empty());
    assert_eq!(out.stats.attempted, 0);
    assert_eq!(out.stats.cache_hits, 0);
}

#[test]
fn budget_exhausted_mid_suite_still_answers_every_function() {
    let funcs = workload(12);
    let cfg = DriverConfig {
        // A suite budget no real solve fits in: the governor must hand
        // out shrinking (eventually zero) grants, and every function
        // must still come back with a result from the fallback rungs.
        global_budget: Some(Duration::from_millis(1)),
        ..tight_cfg()
    };
    let out = run_suite(&funcs, &cfg);
    assert_eq!(out.results.len(), funcs.len());
    for r in &out.results {
        assert!(
            r.func.is_some() || !r.reasons.is_empty(),
            "{}: budget exhaustion must demote (or explain), not vanish",
            r.name
        );
    }
    // The run as a whole must not have been silently un-budgeted: with a
    // 1 ms suite budget at least one function is forced off the optimal
    // rung that an unbudgeted run reaches.
    let unbudgeted = run_suite(&funcs, &tight_cfg());
    let degraded = out
        .results
        .iter()
        .zip(&unbudgeted.results)
        .filter(|(a, b)| a.rung != b.rung || a.reasons.len() > b.reasons.len())
        .count();
    assert!(
        degraded > 0,
        "a 1 ms suite budget should visibly degrade at least one function"
    );
}

#[test]
fn single_function_larger_than_whole_budget_demotes_not_underflows() {
    let funcs = workload(1);
    let cfg = DriverConfig {
        // One function, and the whole suite's budget is far below the
        // per-function ceiling. The grant arithmetic must clamp (not
        // underflow) and the function must still be answered.
        function_budget: Duration::from_secs(8),
        global_budget: Some(Duration::from_nanos(1)),
        ..tight_cfg()
    };
    let out = run_suite(&funcs, &cfg);
    assert_eq!(out.results.len(), 1);
    let r = &out.results[0];
    assert!(
        r.func.is_some() || !r.reasons.is_empty(),
        "an oversized function must demote to a fallback, not disappear"
    );
}
