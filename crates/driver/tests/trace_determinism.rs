//! The structured trace and the metrics registry are part of the
//! determinism guarantee: with tracing on, a suite run at `--jobs 1` and
//! `--jobs 8` must produce a byte-identical event stream (timing records
//! excluded — they are quarantined on their own JSONL lines) and a
//! byte-identical Prometheus exposition.

use std::time::Duration;

use regalloc_driver::{run_suite, trace_jsonl, CacheMode, DriverConfig, SuiteOutcome};
use regalloc_ilp::SolverConfig;
use regalloc_ir::Function;
use regalloc_workloads::{Benchmark, Suite};

fn suite50() -> Vec<Function> {
    let s = Suite::generate_scaled(Benchmark::Xlisp, 42, 0.14);
    assert!(s.functions.len() >= 40, "got {}", s.functions.len());
    s.functions
}

/// Same regime as `driver.rs::fast_config`: tight node/iteration limits
/// with generous wall-clock limits, so time never decides an outcome.
/// Tracing is on and the cache off (a populated cache changes the event
/// stream between runs by design).
fn traced_config(jobs: usize) -> DriverConfig {
    DriverConfig {
        target: regalloc_machine::TargetId::X86Pentium,
        jobs,
        solver: SolverConfig {
            time_limit: Duration::from_secs(300),
            lp_iter_limit: 2_000,
            node_limit: 16,
            max_rows: 600,
            ..SolverConfig::default()
        },
        function_budget: Duration::from_secs(300),
        global_budget: None,
        cache: CacheMode::Off,
        cache_limits: regalloc_driver::cache::CacheLimits::unlimited(),
        equiv_runs: 1,
        equiv_seed: 7,
        compare_baseline: false,
        lint: true,
        revalidate_cache: true,
        warm_starts: false,
        warm_start_distance: 0.25,
        audit: false,
        trace: true,
    }
}

/// The deterministic part of the trace: every JSONL line except the
/// timing records.
fn deterministic_lines(out: &SuiteOutcome) -> String {
    trace_jsonl(out)
        .lines()
        .filter(|l| !l.contains("\"type\":\"timing\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn trace_stream_is_identical_across_worker_counts() {
    let funcs = suite50();
    let base = run_suite(&funcs, &traced_config(1));
    let par = run_suite(&funcs, &traced_config(8));

    let base_events = deterministic_lines(&base);
    assert!(
        base_events.contains("\"type\":\"span-start\""),
        "traces actually recorded events"
    );
    assert_eq!(
        base_events,
        deterministic_lines(&par),
        "jobs=1 and jobs=8 must emit byte-identical trace events"
    );

    // The merged metrics registry is deterministic too — shards are
    // merged in suite order, independent of which worker ran what. The
    // wall-clock-dependent families are excluded: the phase-time
    // histogram and the task-seconds sketch measure real elapsed time,
    // the pool telemetry depends on scheduling, and the jobs gauge
    // reports the (deliberately different) configuration.
    let deterministic_metrics = |out: &SuiteOutcome| {
        out.metrics
            .to_prometheus()
            .lines()
            .filter(|l| {
                !l.contains("regalloc_phase_seconds")
                    && !l.contains("regalloc_jobs")
                    && !l.contains("regalloc_pool_")
                    && !l.contains("regalloc_task_seconds_dist")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        deterministic_metrics(&base),
        deterministic_metrics(&par),
        "jobs=1 and jobs=8 must produce byte-identical deterministic metrics"
    );
}

/// The observatory snapshot (the performance-regression baseline) obeys
/// the same guarantee as the trace stream: with timing stripped it is
/// byte-identical across worker counts and across repeat runs.
#[test]
fn observatory_snapshot_is_identical_across_jobs_and_runs() {
    use regalloc_driver::observatory::{snapshot, SuiteSpec};

    let suites = vec![SuiteSpec {
        name: "seeded/xlisp".to_string(),
        functions: suite50(),
    }];
    let targets = [regalloc_machine::TargetId::X86Pentium];
    let serial = snapshot(&suites, &targets, 1, false);
    let parallel = snapshot(&suites, &targets, 8, false);
    assert_eq!(
        serial, parallel,
        "jobs=1 and jobs=8 must produce byte-identical timing-stripped snapshots"
    );
    let again = snapshot(&suites, &targets, 8, false);
    assert_eq!(parallel, again, "repeat runs must reproduce the snapshot");
    assert!(
        serial.contains("\"pivots\""),
        "snapshot carries solver counters"
    );
}

#[test]
fn trace_agrees_with_results_and_metrics() {
    let funcs = suite50();
    let out = run_suite(&funcs, &traced_config(4));

    let mut nodes = 0u64;
    let mut iters = 0u64;
    for r in &out.results {
        let t = r.trace.as_ref().expect("tracing was on");
        assert_eq!(t.function, r.name);
        if let Some((_, n, li)) = t.solve_done() {
            assert_eq!(n, r.solver_nodes, "{}: trace nodes", r.name);
            assert_eq!(li, r.lp_iters, "{}: trace lp iterations", r.name);
            nodes += n;
            iters += li;
        }
        if let Some((insts, vars, cons)) = t.model_built() {
            assert_eq!(insts, r.num_insts as u64, "{}: trace insts", r.name);
            assert_eq!(vars, r.num_vars as u64, "{}: trace vars", r.name);
            assert_eq!(
                cons, r.num_constraints as u64,
                "{}: trace constraints",
                r.name
            );
        }
        if let Some(rung) = r.rung {
            assert_eq!(
                t.accepted_rung(),
                Some(rung.name()),
                "{}: trace rung",
                r.name
            );
        }
    }
    assert!(nodes > 0, "the suite exercised the solver");
    assert_eq!(
        out.metrics.counter("regalloc_solver_nodes_total", &[]),
        nodes
    );
    assert_eq!(
        out.metrics.counter("regalloc_solver_lp_iters_total", &[]),
        iters
    );
    assert_eq!(
        out.metrics.counter("regalloc_functions_total", &[]),
        funcs.len() as u64
    );
}
