//! Cross-function warm starts, end to end: a cold run populates the
//! cache with symbolic solutions; a perturbed re-run (same shapes,
//! different bodies) misses the cache, projects the nearest donor onto
//! each new model, and prunes the branch-and-bound search — without
//! changing what is accepted wherever the solver reaches optimality.

use std::path::PathBuf;
use std::time::Duration;

use regalloc_core::Rung;
use regalloc_driver::{run_suite, CacheMode, DriverConfig, SuiteOutcome};
use regalloc_ilp::SolverConfig;
use regalloc_ir::Function;
use regalloc_workloads::{perturb_immediates, Benchmark, Suite};

fn suite() -> Vec<Function> {
    let s = Suite::generate_scaled(Benchmark::Xlisp, 42, 0.14);
    assert!(
        s.functions.len() >= 40,
        "want ~50, got {}",
        s.functions.len()
    );
    s.functions
}

fn perturbed(funcs: &[Function]) -> Vec<Function> {
    funcs
        .iter()
        .enumerate()
        .map(|(i, f)| perturb_immediates(f, 1998 + i as u64))
        .collect()
}

/// Deterministic solver limits generous enough for small models to reach
/// optimality (so donors exist and the equal-outcome guarantee applies),
/// with `max_rows` declining the expensive tail.
fn config(dir: PathBuf, warm: bool) -> DriverConfig {
    DriverConfig {
        target: regalloc_machine::TargetId::X86Pentium,
        jobs: 2,
        solver: SolverConfig {
            time_limit: Duration::from_secs(300),
            lp_iter_limit: 20_000,
            node_limit: 512,
            max_rows: 450,
            ..SolverConfig::default()
        },
        function_budget: Duration::from_secs(300),
        cache: CacheMode::Disk(dir),
        equiv_runs: 1,
        equiv_seed: 7,
        warm_starts: warm,
        ..DriverConfig::default()
    }
}

fn fresh_solved(out: &SuiteOutcome) -> usize {
    out.results
        .iter()
        .filter(|r| !r.cache_hit && r.solved())
        .count()
}

fn median(sorted: &[u64]) -> u64 {
    sorted[sorted.len() / 2]
}

#[test]
fn perturbed_rerun_projects_donors_and_prunes_the_search() {
    let dir_on = tempdir("ws-on");
    let dir_off = tempdir("ws-off");
    let funcs = suite();
    let pfuncs = perturbed(&funcs);

    // Cold runs: the donor snapshot is frozen before any entry is
    // stored, so a fresh cache can never warm-start — with the feature
    // on or off, the cold runs are identical.
    let cold_on = run_suite(&funcs, &config(dir_on.clone(), true));
    assert_eq!(cold_on.stats.warm_exact + cold_on.stats.warm_projected, 0);
    let cold_off = run_suite(&funcs, &config(dir_off.clone(), false));
    assert!(cold_on.results.iter().any(|r| r.solved()));

    // Perturbed re-runs over each cache. Immediate-only perturbation
    // keeps every shape identical (distance 0) while changing every
    // fingerprint, so donors project rather than hit.
    let on = run_suite(&pfuncs, &config(dir_on.clone(), true));
    let off = run_suite(&pfuncs, &config(dir_off.clone(), false));

    let misses = on.stats.cache_misses;
    assert!(misses > 0, "perturbed bodies must miss the cache");
    assert_eq!(on.stats.warm_exact, 0, "no perturbed body is cached");
    assert!(
        on.stats.warm_projected * 5 >= misses,
        "projected warm starts must fire for >=20% of misses: {} of {}",
        on.stats.warm_projected,
        misses
    );

    // A donor incumbent is a solution in hand: seeding can rescue
    // functions the node-limited off-mode search loses entirely, and
    // must never lose one it keeps.
    assert!(
        fresh_solved(&on) >= fresh_solved(&off),
        "donor seeding lost functions: on {} vs off {}",
        fresh_solved(&on),
        fresh_solved(&off)
    );

    // Donor incumbents only prune: over the functions IP-solved in both
    // modes, node counts drop (median and total).
    let (mut nodes_on, mut nodes_off): (Vec<u64>, Vec<u64>) = on
        .results
        .iter()
        .zip(&off.results)
        .filter(|(a, b)| !a.cache_hit && a.solved() && b.solved())
        .map(|(a, b)| (a.solver_nodes, b.solver_nodes))
        .unzip();
    nodes_on.sort_unstable();
    nodes_off.sort_unstable();
    assert!(
        nodes_on.len() >= 5,
        "too few functions solved in both modes: {}",
        nodes_on.len()
    );
    assert!(
        median(&nodes_on) <= median(&nodes_off),
        "median nodes: on {} vs off {}",
        median(&nodes_on),
        median(&nodes_off)
    );
    let (sum_on, sum_off): (u64, u64) = (nodes_on.iter().sum(), nodes_off.iter().sum());
    assert!(
        sum_on < sum_off,
        "donor seeding should prune somewhere: on {sum_on} vs off {sum_off}"
    );

    // Wherever both modes proved optimality, the accepted allocation is
    // identical — a donor can change how fast the solver gets there,
    // never where it lands.
    let mut both_optimal = 0;
    for (a, b) in on.results.iter().zip(&off.results) {
        assert!(a.error.is_none() && b.error.is_none());
        if a.rung == Some(Rung::IpOptimal) && b.rung == Some(Rung::IpOptimal) {
            both_optimal += 1;
            assert_eq!(
                a.func.as_ref().map(Function::to_string),
                b.func.as_ref().map(Function::to_string),
                "{}: optimal allocations must match",
                a.name
            );
            assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
            assert_eq!(a.ip_bytes, b.ip_bytes);
        }
    }
    assert!(both_optimal > 0, "some functions must reach optimality");

    // The cold-off run only exists to populate dir_off identically; its
    // accepted allocations match the cold-on run outside timing fields.
    assert_eq!(cold_on.stats.cache_misses, cold_off.stats.cache_misses);

    std::fs::remove_dir_all(&dir_on).ok();
    std::fs::remove_dir_all(&dir_off).ok();
}

fn tempdir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("regalloc-driver-test-{tag}-{pid}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
