//! Multi-target driver behaviour: the v5 cache format against stale v4
//! entries, per-target cache keying, and the MCU running the full stack.

use std::path::PathBuf;
use std::time::Duration;

use regalloc_driver::{run_suite, CacheMode, DriverConfig, FunctionResult};
use regalloc_ilp::SolverConfig;
use regalloc_ir::Function;
use regalloc_machine::TargetId;
use regalloc_workloads::{fuzz_function, GenConfig};

fn fast_config(target: TargetId) -> DriverConfig {
    DriverConfig {
        target,
        jobs: 2,
        solver: SolverConfig {
            time_limit: Duration::from_secs(300),
            lp_iter_limit: 2_000,
            node_limit: 16,
            max_rows: 600,
            ..SolverConfig::default()
        },
        function_budget: Duration::from_secs(300),
        global_budget: None,
        cache: CacheMode::Off,
        cache_limits: regalloc_driver::cache::CacheLimits::unlimited(),
        equiv_runs: 1,
        equiv_seed: 7,
        compare_baseline: false,
        lint: false,
        revalidate_cache: true,
        warm_starts: false,
        warm_start_distance: 0.25,
        audit: false,
        trace: false,
    }
}

/// A pool every registered target accepts: 16-bit words, no symbolic
/// addressing.
fn portable_pool(n: usize) -> Vec<Function> {
    (0..n)
        .map(|i| {
            fuzz_function(
                &format!("pt{i}"),
                0xbeef + i as u64,
                &GenConfig::portable16(),
            )
        })
        .collect()
}

fn observable(r: &FunctionResult) -> (String, bool, Option<String>) {
    (
        r.name.clone(),
        r.attempted,
        r.func.as_ref().map(|f| f.to_string()),
    )
}

fn alloc_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "alloc"))
                .collect()
        })
        .unwrap_or_default();
    v.sort();
    v
}

/// A stale v4-format entry (wrong magic) is a rejected miss, never a
/// crash: the function is re-solved and the result is unchanged.
#[test]
fn stale_v4_cache_entry_is_rejected_and_resolved() {
    let dir = tempdir("v4-stale");
    let funcs = portable_pool(12);
    let cfg = DriverConfig {
        cache: CacheMode::Disk(dir.clone()),
        ..fast_config(TargetId::X86Pentium)
    };
    let cold = run_suite(&funcs, &cfg);
    let files = alloc_files(&dir);
    assert!(!files.is_empty(), "cold run persisted entries");

    // Downgrade every entry's magic to the previous format version,
    // keeping the payload (and its checksum) intact — exactly what a
    // cache directory left behind by an older build looks like.
    let mut downgraded = 0;
    for path in &files {
        let text = std::fs::read_to_string(path).unwrap();
        assert!(
            text.starts_with("regalloc-cache v5\n"),
            "{}",
            path.display()
        );
        let old = text.replacen("regalloc-cache v5\n", "regalloc-cache v4\n", 1);
        std::fs::write(path, old).unwrap();
        downgraded += 1;
    }
    assert!(downgraded > 0);

    let rerun = run_suite(&funcs, &cfg);
    assert!(
        rerun.stats.cache_rejected >= 1,
        "stale-format entries must be rejected, got {} rejections",
        rerun.stats.cache_rejected
    );
    assert_eq!(
        cold.results.iter().map(observable).collect::<Vec<_>>(),
        rerun.results.iter().map(observable).collect::<Vec<_>>(),
        "rejected entries must be re-solved to the same allocations"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The same function allocated for two targets occupies two distinct
/// cache entries; re-running either target stays a cache hit.
#[test]
fn same_function_under_two_targets_gets_two_entries() {
    let dir = tempdir("two-targets");
    let funcs = portable_pool(8);

    let x86_cfg = DriverConfig {
        cache: CacheMode::Disk(dir.clone()),
        ..fast_config(TargetId::X86Pentium)
    };
    let x86 = run_suite(&funcs, &x86_cfg);
    let after_x86 = alloc_files(&dir).len();
    assert!(after_x86 > 0, "x86 run persisted entries");

    let mcu_cfg = DriverConfig {
        cache: CacheMode::Disk(dir.clone()),
        ..fast_config(TargetId::Mcu)
    };
    let mcu = run_suite(&funcs, &mcu_cfg);
    let after_mcu = alloc_files(&dir).len();
    assert!(
        after_mcu > after_x86,
        "the MCU run must add its own entries ({after_x86} -> {after_mcu})"
    );
    assert_eq!(mcu.stats.cache_hits, 0, "no cross-target cache hits");

    // Both runs replay warm from their own entries.
    let x86_warm = run_suite(&funcs, &x86_cfg);
    assert!(
        x86_warm.stats.hit_rate() >= 0.9,
        "{}",
        x86_warm.stats.hit_rate()
    );
    assert_eq!(
        x86.results.iter().map(observable).collect::<Vec<_>>(),
        x86_warm.results.iter().map(observable).collect::<Vec<_>>(),
    );
    let mcu_warm = run_suite(&funcs, &mcu_cfg);
    assert!(
        mcu_warm.stats.hit_rate() >= 0.9,
        "{}",
        mcu_warm.stats.hit_rate()
    );
    assert_eq!(
        mcu.results.iter().map(observable).collect::<Vec<_>>(),
        mcu_warm.results.iter().map(observable).collect::<Vec<_>>(),
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The MCU runs the full stack: portable functions are attempted,
/// allocated, verified and served by a rung; classic 32-bit functions
/// are refused rather than miscompiled.
#[test]
fn mcu_runs_full_stack_and_refuses_wide_functions() {
    let portable = portable_pool(10);
    let cfg = fast_config(TargetId::Mcu);
    let out = run_suite(&portable, &cfg);
    assert_eq!(out.results.len(), portable.len());
    let attempted = out.results.iter().filter(|r| r.attempted).count();
    assert!(
        attempted >= portable.len() / 2,
        "most portable functions are attempted on the MCU, got {attempted}"
    );
    for r in out.results.iter().filter(|r| r.attempted) {
        assert!(r.func.is_some(), "{}: allocated code", r.name);
        assert!(r.rung.is_some(), "{}: served by a rung", r.name);
    }

    // The classic 32-bit mix is refused wholesale (no 32-bit registers).
    let wide: Vec<Function> = (0..6)
        .map(|i| fuzz_function(&format!("w32_{i}"), 0xfeed + i as u64, &GenConfig::fuzz()))
        .collect();
    let wide_out = run_suite(&wide, &cfg);
    assert!(
        wide_out.results.iter().all(|r| !r.attempted),
        "32-bit functions must be refused on the MCU"
    );
}

fn tempdir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("regalloc-driver-targets-{tag}-{pid}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
