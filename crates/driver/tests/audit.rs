//! End-to-end certificate auditing through the batch driver: fresh
//! solves attach audit-verified proofs, cache hits re-verify the
//! persisted certificate against a rebuilt model, and a forged
//! certificate is rejected and re-solved — never served as "optimal".

use std::path::PathBuf;
use std::time::Duration;

use regalloc_core::Rung;
use regalloc_driver::cache::{checksum, MAGIC};
use regalloc_driver::{run_suite, CacheMode, DriverConfig};
use regalloc_ir::{BinOp, Function, FunctionBuilder, Operand, Width};

fn sample(name: &str, imm: i64) -> Function {
    let mut b = FunctionBuilder::new(name);
    let p = b.new_param("p", Width::B32);
    let x = b.new_sym(Width::B32);
    let y = b.new_sym(Width::B32);
    let z = b.new_sym(Width::B32);
    b.load_global(x, p);
    b.load_imm(y, imm);
    b.bin(BinOp::Mul, z, Operand::sym(x), Operand::sym(y));
    b.bin(BinOp::Add, z, Operand::sym(z), Operand::sym(x));
    b.ret(Some(z));
    b.finish()
}

fn audit_config(cache: CacheMode) -> DriverConfig {
    DriverConfig {
        target: regalloc_machine::TargetId::X86Pentium,
        jobs: 1,
        cache,
        audit: true,
        function_budget: Duration::from_secs(300),
        ..DriverConfig::default()
    }
}

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("regalloc-audit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_optimal_acceptance_carries_a_verified_audit() {
    let funcs: Vec<Function> = (0..3).map(|i| sample(&format!("f{i}"), 3 + i)).collect();
    let out = run_suite(&funcs, &audit_config(CacheMode::Memory));
    for r in &out.results {
        assert_eq!(r.rung, Some(Rung::IpOptimal), "{}", r.name);
        let audit = r.audit.as_ref().expect("audit attached");
        assert_eq!(audit.verdict, regalloc_audit::Verdict::Verified);
        assert!(audit.leaves > 0);
    }
    assert_eq!(
        out.metrics
            .counter("regalloc_certificates_checked_total", &[]),
        3
    );
    assert_eq!(
        out.metrics
            .counter("regalloc_certificates_rejected_total", &[]),
        0
    );
}

#[test]
fn cache_hits_are_re_audited_and_forged_certificates_rejected() {
    let dir = temp_cache_dir("hits");
    let funcs = vec![sample("g", 7)];
    let cfg = audit_config(CacheMode::Disk(dir.clone()));

    // Cold run: fresh solve, verified, certificate persisted.
    let cold = run_suite(&funcs, &cfg);
    assert_eq!(cold.results[0].rung, Some(Rung::IpOptimal));
    assert!(!cold.results[0].cache_hit);
    assert_eq!(
        cold.results[0].audit.as_ref().unwrap().verdict,
        regalloc_audit::Verdict::Verified
    );

    // Warm run: the hit is only served after its stored certificate
    // re-verifies against a freshly rebuilt model.
    let warm = run_suite(&funcs, &cfg);
    assert!(warm.results[0].cache_hit, "second run hits the cache");
    assert_eq!(warm.results[0].rung, Some(Rung::IpOptimal));
    assert_eq!(
        warm.results[0].audit.as_ref().unwrap().verdict,
        regalloc_audit::Verdict::Verified
    );

    // Forge the persisted certificate: claim a better objective by
    // rewriting the incumbent line, with a *consistent* checksum so the
    // only thing standing between the forgery and an accepted optimality
    // claim is the exact-rational audit itself.
    let entry_path = {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|d| d.path())
            .filter(|p| p.extension().is_some_and(|x| x == "alloc"))
            .collect();
        paths.sort();
        assert_eq!(paths.len(), 1);
        paths.remove(0)
    };
    let text = std::fs::read_to_string(&entry_path).unwrap();
    let payload = text
        .strip_prefix(MAGIC)
        .unwrap()
        .strip_prefix('\n')
        .unwrap()
        .split_once('\n')
        .unwrap()
        .1;
    let inc_line = payload
        .lines()
        .find(|l| l.starts_with("inc "))
        .expect("certificate incumbent line persisted");
    let (_, obj_hex, _) = {
        let mut it = inc_line.split(' ');
        (it.next().unwrap(), it.next().unwrap(), it.next().unwrap())
    };
    let obj = f64::from_bits(u64::from_str_radix(obj_hex, 16).unwrap());
    let forged_line = inc_line.replace(obj_hex, &format!("{:016x}", (obj - 1.0).to_bits()));
    let forged_payload = payload.replace(inc_line, &forged_line);
    assert_ne!(payload, forged_payload, "forgery actually changed the file");
    std::fs::write(
        &entry_path,
        format!(
            "{MAGIC}\ncheck {:016x}\n{forged_payload}",
            checksum(&forged_payload)
        ),
    )
    .unwrap();

    let after = run_suite(&funcs, &cfg);
    let r = &after.results[0];
    // The forged entry was evicted and the function re-solved fresh; the
    // final answer is again a *verified* optimality claim.
    assert!(!r.cache_hit, "forged entry must not be served");
    assert_eq!(r.rung, Some(Rung::IpOptimal));
    assert_eq!(
        r.audit.as_ref().unwrap().verdict,
        regalloc_audit::Verdict::Verified
    );
    assert!(
        after.stats.cache_rejected >= 1,
        "forgery counted as rejection"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn entries_stored_without_audit_are_stale_under_audit() {
    let dir = temp_cache_dir("stale");
    let funcs = vec![sample("h", 5)];
    let mut plain = audit_config(CacheMode::Disk(dir.clone()));
    plain.audit = false;
    // Unaudited cold run stores an entry without a certificate.
    let cold = run_suite(&funcs, &plain);
    assert_eq!(cold.results[0].rung, Some(Rung::IpOptimal));
    assert!(cold.results[0].audit.is_none());

    // Under auditing the certificate-less ip-optimal entry is stale: the
    // function re-solves, this time with a verified proof.
    let audited = run_suite(&funcs, &audit_config(CacheMode::Disk(dir.clone())));
    let r = &audited.results[0];
    assert!(!r.cache_hit);
    assert_eq!(r.rung, Some(Rung::IpOptimal));
    assert_eq!(
        r.audit.as_ref().unwrap().verdict,
        regalloc_audit::Verdict::Verified
    );

    // And now the cache is warm *with* a proof.
    let warm = run_suite(&funcs, &audit_config(CacheMode::Disk(dir.clone())));
    assert!(warm.results[0].cache_hit);
    assert_eq!(
        warm.results[0].audit.as_ref().unwrap().verdict,
        regalloc_audit::Verdict::Verified
    );
    let _ = std::fs::remove_dir_all(&dir);
}
