//! End-to-end tests for the batch allocation service: determinism across
//! worker counts, warm-cache behaviour, cache poisoning, and global
//! budget exhaustion.

use std::path::PathBuf;
use std::time::Duration;

use regalloc_driver::{run_suite, CacheMode, DriverConfig, FunctionResult, SuiteOutcome};
use regalloc_ilp::SolverConfig;
use regalloc_ir::Function;
use regalloc_workloads::{Benchmark, Suite};

/// A seeded ~50-function suite (xlisp has the most functions, so a small
/// scale still yields a broad size mix).
fn suite50() -> Vec<Function> {
    let s = Suite::generate_scaled(Benchmark::Xlisp, 42, 0.14);
    assert!(
        s.functions.len() >= 40,
        "expected a broad suite, got {}",
        s.functions.len()
    );
    s.functions
}

/// A config cheap enough for CI: tight node/iteration limits and a low
/// `max_rows` (declining big models is instant and deterministic)
/// terminate every solve long before the wall-clock limits bind, which
/// is exactly the regime the determinism guarantee covers.
fn fast_config() -> DriverConfig {
    DriverConfig {
        target: regalloc_machine::TargetId::X86Pentium,
        jobs: 1,
        solver: SolverConfig {
            time_limit: Duration::from_secs(300),
            lp_iter_limit: 2_000,
            node_limit: 16,
            max_rows: 600,
            ..SolverConfig::default()
        },
        function_budget: Duration::from_secs(300),
        global_budget: None,
        cache: CacheMode::Off,
        cache_limits: regalloc_driver::cache::CacheLimits::unlimited(),
        equiv_runs: 1,
        equiv_seed: 7,
        compare_baseline: false,
        lint: false,
        revalidate_cache: true,
        // These tests compare node-for-node observables across runs with
        // differently-populated caches; donor incumbents legitimately
        // change the nodes a bounded search explores, so cross-function
        // warm starts get their own test file (`warm_start.rs`).
        warm_starts: false,
        warm_start_distance: 0.25,
        audit: false,
        trace: false,
    }
}

/// Everything about a result that the determinism guarantee covers
/// (i.e. all fields except wall-clock timings).
type Observable = (
    String,
    bool,
    Option<String>,
    String,
    Vec<String>,
    [usize; 3],
    u64,
    u64,
);

fn observable(r: &FunctionResult) -> Observable {
    (
        r.name.clone(),
        r.attempted,
        r.func.as_ref().map(|f| f.to_string()),
        format!("{:?}/{:?}", r.rung, r.stats),
        r.reasons.iter().map(|c| c.name().to_string()).collect(),
        [r.num_constraints, r.num_vars, r.num_insts],
        r.solver_nodes,
        r.ip_bytes,
    )
}

fn observables(out: &SuiteOutcome) -> Vec<Observable> {
    out.results.iter().map(observable).collect()
}

#[test]
fn determinism_across_worker_counts() {
    let funcs = suite50();
    let cfg1 = fast_config();
    let base = run_suite(&funcs, &cfg1);
    for jobs in [4, 8] {
        let cfg = DriverConfig {
            target: regalloc_machine::TargetId::X86Pentium,
            jobs,
            ..fast_config()
        };
        let par = run_suite(&funcs, &cfg);
        assert_eq!(
            observables(&base),
            observables(&par),
            "jobs=1 and jobs={jobs} must produce byte-identical results"
        );
    }
    // The run did real work on real functions.
    assert!(base.results.iter().any(|r| r.attempted && r.func.is_some()));
}

#[test]
fn warm_disk_cache_hits_and_matches_cold() {
    let dir = tempdir("warm");
    let funcs = suite50();
    let cfg = DriverConfig {
        target: regalloc_machine::TargetId::X86Pentium,
        jobs: 4,
        cache: CacheMode::Disk(dir.clone()),
        ..fast_config()
    };
    let cold = run_suite(&funcs, &cfg);
    assert_eq!(cold.stats.cache_rejected, 0);
    let warm = run_suite(&funcs, &cfg);
    assert!(
        warm.stats.hit_rate() >= 0.9,
        "warm rerun should be >=90% cache hits, got {:.2} ({} hits / {} misses)",
        warm.stats.hit_rate(),
        warm.stats.cache_hits,
        warm.stats.cache_misses
    );
    assert_eq!(
        observables(&cold),
        observables(&warm),
        "warm results must be identical to cold"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_cache_entry_is_detected_and_resolved() {
    let dir = tempdir("poison");
    let funcs = suite50();
    let cfg = DriverConfig {
        target: regalloc_machine::TargetId::X86Pentium,
        jobs: 2,
        cache: CacheMode::Disk(dir.clone()),
        ..fast_config()
    };
    let cold = run_suite(&funcs, &cfg);

    // Tamper with every persisted entry: un-allocate the body by
    // rewriting physical registers back to symbolic ones, then re-stamp
    // the checksum so only semantic verification can catch it.
    let mut tampered = 0;
    for e in std::fs::read_dir(&dir).unwrap() {
        let path = e.unwrap().path();
        if path.extension().is_none_or(|x| x != "alloc") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let poisoned = text.replace("r0", "s990").replace("r1", "s991");
        if poisoned == text {
            continue;
        }
        // Recompute the checksum over the tampered payload (everything
        // after the `check` line) exactly as the cache does.
        let mut lines: Vec<&str> = poisoned.lines().collect();
        let payload = lines[2..].join("\n") + "\n";
        let stamp = format!("check {:016x}", regalloc_driver::cache::checksum(&payload));
        lines[1] = &stamp;
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        tampered += 1;
    }
    assert!(tampered > 0, "expected to tamper at least one cache entry");

    let rerun = run_suite(&funcs, &cfg);
    assert!(
        rerun.stats.cache_rejected >= 1,
        "verification must reject tampered entries"
    );
    assert_eq!(
        observables(&cold),
        observables(&rerun),
        "rejected entries must be re-solved to the same allocations"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exhausted_global_budget_demotes_but_completes() {
    let funcs = suite50();
    let cfg = DriverConfig {
        target: regalloc_machine::TargetId::X86Pentium,
        jobs: 4,
        global_budget: Some(Duration::ZERO),
        ..fast_config()
    };
    let out = run_suite(&funcs, &cfg);
    assert_eq!(out.results.len(), funcs.len(), "every function completes");
    for r in out.results.iter().filter(|r| r.attempted) {
        assert!(
            r.func.is_some(),
            "{}: fallback rungs always produce code",
            r.name
        );
        assert_eq!(
            r.granted_budget,
            Duration::ZERO,
            "{}: no budget left",
            r.name
        );
        let rung = r.rung.expect("allocated");
        assert!(
            !matches!(rung, regalloc_core::Rung::IpOptimal),
            "{}: a zero deadline cannot prove optimality, got {:?}",
            r.name,
            rung
        );
    }
}

/// Unique-enough temp dir under the target directory (no external
/// tempfile crate in the offline workspace).
fn tempdir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let dir = std::env::temp_dir().join(format!("regalloc-driver-test-{tag}-{pid}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
