//! The per-function allocation service — the single code path behind
//! both the batch CLI ([`crate::run_suite`]) and the `regalloc-serve`
//! daemon.
//!
//! Extracting this out of `run_suite` is what makes the daemon's
//! byte-identity guarantee cheap to state: a request served over the
//! wire runs *exactly* the code a batch run would, down to the cache
//! lookup ordering and the warm-start donor selection. The two callers
//! differ only in where the wall-clock grant comes from, which is
//! abstracted behind [`BudgetSource`]:
//!
//! * the batch driver passes its [`BudgetGovernor`] (fair share of a
//!   global budget, shrinking as it drains);
//! * the daemon pre-charges a per-client token bucket
//!   ([`crate::schedule::ClientBudgets`]) at admission and passes the
//!   reserved grant as a [`FixedGrant`], settling the refund after the
//!   solve.
//!
//! Fault injection ([`FaultPlan`]) is a per-request option so the chaos
//! soak can hammer the daemon, but a faulted request **never touches the
//! shared cache** — neither lookup nor store — so injected corruption
//! cannot poison results served to well-behaved clients.

use std::time::{Duration, Instant};

use regalloc_coloring::ColoringAllocator;
use regalloc_core::{DonorSolution, FaultPlan, ReasonCode, RobustAllocator, Rung, WarmStartKind};
use regalloc_ir::{fingerprint, shape_vector, Function};
use regalloc_machine::{function_size, refuses, Machine};
use regalloc_obs::{Event, Metrics, Phase, Tracer, SIZE_BUCKETS, TIME_BUCKETS};

use crate::cache::{cache_key, CacheEntry, DonorEntry, SolutionCache};
use crate::schedule::BudgetGovernor;
use crate::{not_attempted, BaselineResult, CacheMode, DriverConfig, FunctionResult};

/// Where a task's wall-clock grant comes from.
///
/// `grant` is called once per fresh solve (never on a cache hit or a
/// skipped function — those call `skip`, which lets fair-share
/// implementations return the unused share to the pool).
pub trait BudgetSource: Sync {
    /// Reserve and return the wall-clock budget for one fresh solve.
    fn grant(&self) -> Duration;
    /// Note that a task completed without solving (hit / not attempted).
    fn skip(&self);
}

impl BudgetSource for BudgetGovernor {
    fn grant(&self) -> Duration {
        BudgetGovernor::grant(self)
    }
    fn skip(&self) {
        BudgetGovernor::skip(self)
    }
}

/// A pre-reserved grant: the daemon charges the client's token bucket at
/// admission and hands the reservation here. During drain the daemon
/// substitutes [`Duration::ZERO`], which drops in-flight work straight to
/// the ladder's always-terminating fallback rungs.
pub struct FixedGrant(pub Duration);

impl BudgetSource for FixedGrant {
    fn grant(&self) -> Duration {
        self.0
    }
    fn skip(&self) {}
}

/// Per-request overrides layered over the service's [`DriverConfig`].
#[derive(Clone, Debug, Default)]
pub struct RequestOptions {
    /// Override [`DriverConfig::lint`] for this request.
    pub lint: Option<bool>,
    /// Override [`DriverConfig::trace`] for this request.
    pub trace: Option<bool>,
    /// Inject faults into this request's pipeline (chaos testing). A
    /// faulted request always bypasses the cache.
    pub faults: Option<FaultPlan>,
    /// Bypass the solution cache entirely (no lookup, no store).
    pub bypass_cache: bool,
}

/// The long-lived allocation service: machine model, solution cache and
/// frozen donor snapshot, shared by every worker.
///
/// Donors are frozen at construction — exactly the batch driver's
/// "cold run" semantics — so warm-start selection is independent of
/// request arrival order and the byte-identity guarantee holds for any
/// interleaving of clients.
pub struct AllocationService {
    cfg: DriverConfig,
    machine: Box<dyn Machine + Send + Sync>,
    cache: Option<SolutionCache>,
    donors: Vec<DonorEntry>,
}

impl AllocationService {
    /// Build the service from a driver configuration. `cfg.jobs` and
    /// `cfg.global_budget` are carried but not consulted here — they
    /// belong to the caller's scheduling layer.
    pub fn new(cfg: DriverConfig) -> AllocationService {
        let machine = regalloc_core::targets::machine_for(cfg.target);
        let cache = match &cfg.cache {
            CacheMode::Off => None,
            CacheMode::Memory => Some(SolutionCache::with_limits(None, cfg.cache_limits)),
            CacheMode::Disk(dir) => Some(SolutionCache::with_limits(
                Some(dir.clone()),
                cfg.cache_limits,
            )),
        };
        let donors: Vec<DonorEntry> = match (&cache, cfg.warm_starts) {
            (Some(c), true) => c.donor_snapshot(),
            _ => Vec::new(),
        };
        AllocationService {
            cfg,
            machine,
            cache,
            donors,
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    /// The solution cache, if one is configured.
    pub fn cache(&self) -> Option<&SolutionCache> {
        self.cache.as_ref()
    }

    /// The machine model every request is allocated against — resolved
    /// from [`DriverConfig::target`] through the registry at construction.
    pub fn machine(&self) -> &(dyn Machine + Send + Sync) {
        self.machine.as_ref()
    }

    /// The analysis-free cost estimate the admission layer sizes
    /// requests with.
    pub fn estimate(&self, f: &Function) -> usize {
        regalloc_core::build::estimate_constraints(f)
    }

    /// Allocate one function: the sealed task the batch pool and the
    /// daemon workers both run. Returns the finished [`FunctionResult`]
    /// with its trace (when tracing) and metrics shard attached.
    pub fn allocate_one(
        &self,
        f: &Function,
        estimate: usize,
        budget: &dyn BudgetSource,
        opts: &RequestOptions,
    ) -> FunctionResult {
        let tracing = opts.trace.unwrap_or(self.cfg.trace);
        let tracer = if tracing { Tracer::on() } else { Tracer::off() };
        let (mut r, cache_outcome) = self.allocate_inner(f, estimate, budget, opts, &tracer);
        if tracing {
            r.trace = Some(tracer.finish(&r.name));
        }
        r.metrics = task_metrics(&r, cache_outcome);
        r
    }

    fn allocate_inner(
        &self,
        f: &Function,
        estimate: usize,
        budget: &dyn BudgetSource,
        opts: &RequestOptions,
        tracer: &Tracer,
    ) -> (FunctionResult, Option<&'static str>) {
        let t0 = Instant::now();
        let cfg = &self.cfg;
        let machine: &(dyn Machine + Send + Sync) = self.machine.as_ref();
        let lint_on = opts.lint.unwrap_or(cfg.lint);
        // A faulted request must not read or write shared state: its
        // degraded (or corrupted-then-caught) outcome would otherwise be
        // served to healthy clients and break byte-identity with batch.
        let use_cache = !opts.bypass_cache && opts.faults.is_none();
        if refuses(machine, f) {
            budget.skip();
            return (not_attempted(f, estimate), None);
        }
        let gc = ColoringAllocator::new(machine);
        let baseline = cfg.compare_baseline.then(|| {
            let c = gc
                .allocate(f)
                .expect("baseline allocates attempted functions");
            let bytes = function_size(machine, &c.func);
            BaselineResult {
                func: c.func,
                stats: c.stats,
                bytes,
            }
        });

        let key = cache_key(f, cfg.target, &cfg.solver);
        let cache = if use_cache { self.cache.as_ref() } else { None };
        let mut cache_outcome = cache.map(|_| "miss");
        if let Some(cache) = cache {
            // Pin across lookup + revalidation: a concurrent store from
            // another worker may trigger LRU eviction, and an entry must
            // never be evicted while it is being verified.
            let _pin = cache.pin(key);
            let hit = {
                let _c = tracer.time(Phase::Cache);
                cache.lookup(key)
            };
            if let Some(hit) = hit {
                // An entry that degraded below the IP-optimal rung under a
                // smaller budget than the one now configured can plausibly
                // do better today: treat it as a miss and re-solve (the
                // key deliberately ignores the governed deadline so this
                // judgment happens here). The entry stays in place — it
                // may still donate its symbolic solution.
                let stale_deadline = hit.entry.rung != Rung::IpOptimal
                    && hit.entry.effective_deadline < cfg.function_budget;
                // The cache's own structural re-verification has passed;
                // the static translation validator additionally proves the
                // stored code computes *this* function's values. A failure
                // means the entry was stale or corrupt: evict and resolve.
                let revalidation_failed = cfg.revalidate_cache && {
                    let _c = tracer.time(Phase::Cache);
                    !regalloc_lint::validate(machine, f, &hit.func).is_empty()
                };
                // Under auditing an ip-optimal hit is only as good as its
                // proof: re-audit the persisted certificate against a
                // freshly rebuilt model. No certificate (an entry stored
                // without auditing) is stale — re-solve and store one; a
                // failing one is poison — evict and re-solve. Either way
                // the optimality claim is never served unproven.
                let mut hit_audit: Option<regalloc_core::AuditSummary> = None;
                let mut audit_stale = false;
                let mut audit_rejected = false;
                if !revalidation_failed
                    && !stale_deadline
                    && cfg.audit
                    && hit.entry.rung == Rung::IpOptimal
                {
                    let _a = tracer.span(Phase::Audit);
                    let cert = hit
                        .entry
                        .cert
                        .as_deref()
                        .and_then(regalloc_ilp::Certificate::from_text);
                    match cert {
                        None => audit_stale = true,
                        Some(cert) => {
                            let outcome =
                                regalloc_core::IpAllocator::new(machine).build_only(f).map(
                                    |built| regalloc_audit::audit_certificate(&built.model, &cert),
                                );
                            match outcome {
                                Ok(a) if a.verdict == regalloc_audit::Verdict::Verified => {
                                    tracer.event(|| Event::CertificateChecked {
                                        leaves: a.leaves_checked,
                                    });
                                    hit_audit = Some(regalloc_core::AuditSummary {
                                        verdict: a.verdict,
                                        leaves: a.leaves_checked,
                                        code: None,
                                        diagnostics: Vec::new(),
                                    });
                                }
                                Ok(a) => {
                                    let code = a.primary_code().unwrap_or("unknown");
                                    tracer.event(|| Event::CertificateRejected { code });
                                    audit_rejected = true;
                                }
                                Err(_) => audit_stale = true,
                            }
                        }
                    }
                }
                if revalidation_failed || audit_rejected {
                    cache.reject(key);
                    cache_outcome = Some("rejected");
                } else if stale_deadline || audit_stale {
                    cache_outcome = Some("stale");
                } else {
                    budget.skip();
                    tracer.event(|| Event::CacheLookup { outcome: "hit" });
                    let lints = if lint_on {
                        let _l = tracer.time(Phase::Lint);
                        regalloc_lint::lint_allocation(machine, f, &hit.func)
                    } else {
                        Vec::new()
                    };
                    note_lints(tracer, &lints);
                    let result = FunctionResult {
                        name: f.name().to_string(),
                        attempted: true,
                        func: Some(hit.func),
                        stats: hit.entry.stats,
                        rung: Some(hit.entry.rung),
                        reasons: hit.entry.reasons,
                        num_constraints: hit.entry.num_constraints,
                        num_vars: hit.entry.num_vars,
                        num_insts: hit.entry.num_insts,
                        solver_nodes: hit.entry.solver_nodes,
                        lp_iters: hit.entry.lp_iters,
                        solve_time: Duration::ZERO,
                        build_time: Duration::ZERO,
                        validate_time: Duration::ZERO,
                        health: regalloc_ilp::SolverHealth::default(),
                        ip_bytes: hit.entry.ip_bytes,
                        cache_hit: true,
                        warm_start: hit.entry.warm_start,
                        granted_budget: cfg.function_budget,
                        estimate,
                        task_time: t0.elapsed(),
                        lints,
                        audit: hit_audit,
                        baseline,
                        trace: None,
                        metrics: Metrics::default(),
                        error: None,
                    };
                    return (result, Some("hit"));
                }
            }
        }
        if let Some(outcome) = cache_outcome {
            tracer.event(|| Event::CacheLookup { outcome });
        }

        // Nearest-neighbour donor lookup: the frozen snapshot's closest
        // shape within the distance threshold, ties broken by fingerprint
        // for determinism. An exact fingerprint match means the donor
        // solved this very body (under a different solver configuration
        // or before a stale-deadline re-solve) and lowers rather than
        // projects.
        let fp = fingerprint(f);
        let shape = shape_vector(f);
        let donor = if use_cache {
            self.donors
                .iter()
                .map(|d| (d.shape.distance(&shape), d))
                .filter(|(dist, _)| *dist <= cfg.warm_start_distance)
                .min_by(|a, b| {
                    a.0.total_cmp(&b.0)
                        .then_with(|| a.1.fingerprint.cmp(&b.1.fingerprint))
                })
                .map(|(_, d)| DonorSolution {
                    exact: d.fingerprint == fp,
                    solution: d.solution.clone(),
                })
        } else {
            None
        };

        let granted = budget.grant();
        let mut robust = RobustAllocator::new(machine)
            .with_solver_config(cfg.solver.clone())
            .with_budget(granted)
            .with_equivalence(cfg.equiv_runs, cfg.equiv_seed)
            .with_audit(cfg.audit)
            .with_baseline(&gc)
            .with_donor(donor);
        if let Some(faults) = &opts.faults {
            robust = robust.with_faults(*faults);
        }
        let outcome = match robust.allocate_traced(f, tracer) {
            Ok(out) => {
                let ip_bytes = {
                    let _e = tracer.time(Phase::Encode);
                    function_size(machine, &out.func)
                };
                let lints = if lint_on {
                    let _l = tracer.time(Phase::Lint);
                    regalloc_lint::lint_allocation(machine, f, &out.func)
                } else {
                    Vec::new()
                };
                note_lints(tracer, &lints);
                let reasons: Vec<ReasonCode> =
                    out.report.demotions.iter().map(|d| d.reason).collect();
                if let Some(cache) = cache {
                    let _c = tracer.time(Phase::Cache);
                    cache.store(
                        key,
                        CacheEntry {
                            target: cfg.target,
                            rung: out.report.rung,
                            reasons: reasons.clone(),
                            stats: out.stats,
                            num_constraints: out.report.num_constraints,
                            num_vars: out.report.num_vars,
                            num_insts: out.report.num_insts,
                            solver_nodes: out.report.solver_nodes,
                            lp_iters: out.report.lp_iters,
                            ip_bytes,
                            effective_deadline: granted,
                            fingerprint: fp,
                            shape,
                            warm_start: out.report.warm_start,
                            symbolic: out.symbolic.clone(),
                            cert: out.certificate.as_ref().map(|c| c.to_text()),
                            slots: out.func.slots().to_vec(),
                            func_text: format!("{}\n", out.func),
                        },
                    );
                }
                FunctionResult {
                    name: f.name().to_string(),
                    attempted: true,
                    func: Some(out.func),
                    stats: out.stats,
                    rung: Some(out.report.rung),
                    reasons,
                    num_constraints: out.report.num_constraints,
                    num_vars: out.report.num_vars,
                    num_insts: out.report.num_insts,
                    solver_nodes: out.report.solver_nodes,
                    lp_iters: out.report.lp_iters,
                    solve_time: out.report.solve_time,
                    build_time: out.report.build_time,
                    validate_time: out.report.validate_time,
                    health: out.report.health,
                    ip_bytes,
                    cache_hit: false,
                    warm_start: out.report.warm_start,
                    granted_budget: granted,
                    estimate,
                    task_time: t0.elapsed(),
                    lints,
                    audit: out.report.audit.clone(),
                    baseline,
                    trace: None,
                    metrics: Metrics::default(),
                    error: None,
                }
            }
            Err(e) => FunctionResult {
                name: f.name().to_string(),
                attempted: true,
                func: None,
                stats: Default::default(),
                rung: None,
                reasons: Vec::new(),
                num_constraints: 0,
                num_vars: 0,
                num_insts: f.num_insts(),
                solver_nodes: 0,
                lp_iters: 0,
                solve_time: Duration::ZERO,
                build_time: Duration::ZERO,
                validate_time: Duration::ZERO,
                health: regalloc_ilp::SolverHealth::default(),
                ip_bytes: 0,
                cache_hit: false,
                warm_start: WarmStartKind::None,
                granted_budget: granted,
                estimate,
                task_time: t0.elapsed(),
                lints: Vec::new(),
                audit: None,
                baseline,
                trace: None,
                metrics: Metrics::default(),
                error: Some(e.to_string()),
            },
        };
        (outcome, cache_outcome)
    }
}

/// Split textual IR into functions (`fn ...` through the closing `}` at
/// column zero) and parse each. `label` names the source in errors (a
/// file path, or a request id on the wire).
pub fn parse_functions(label: &str, text: &str) -> Result<Vec<Function>, String> {
    let mut funcs = Vec::new();
    let mut chunk = String::new();
    for line in text.lines() {
        if line.starts_with("fn ") && !chunk.is_empty() {
            return Err(format!("{label}: `fn` before previous function closed"));
        }
        if line.starts_with(';') || (line.trim().is_empty() && chunk.is_empty()) {
            continue;
        }
        chunk.push_str(line);
        chunk.push('\n');
        if line == "}" {
            funcs.push(regalloc_ir::parse_function(&chunk).map_err(|e| format!("{label}: {e}"))?);
            chunk.clear();
        }
    }
    if !chunk.trim().is_empty() {
        return Err(format!("{label}: unterminated function at end of file"));
    }
    Ok(funcs)
}

/// Emit one `LintFindings` event per diagnostic code (sorted by slug).
fn note_lints(tracer: &Tracer, lints: &[regalloc_lint::Diagnostic]) {
    if !tracer.is_on() || lints.is_empty() {
        return;
    }
    let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for d in lints {
        *counts.entry(d.code.slug).or_insert(0) += 1;
    }
    for (code, count) in counts {
        tracer.event(|| Event::LintFindings { code, count });
    }
}

/// Build one task's metrics shard from its finished result.
/// `cache_outcome` is the lookup disposition (`hit` / `miss` / `stale` /
/// `rejected`), absent when the cache is off or bypassed.
fn task_metrics(r: &FunctionResult, cache_outcome: Option<&'static str>) -> Metrics {
    let mut m = Metrics::new();
    m.inc("regalloc_functions_total", &[], 1);
    m.observe(
        "regalloc_function_insts",
        &[],
        SIZE_BUCKETS,
        r.num_insts as f64,
    );
    if let Some(outcome) = cache_outcome {
        m.inc("regalloc_cache_events_total", &[("outcome", outcome)], 1);
    }
    if !r.attempted {
        return m;
    }
    m.inc("regalloc_functions_attempted_total", &[], 1);
    if r.solved() {
        m.inc("regalloc_functions_solved_total", &[], 1);
    }
    if r.solved_optimally() {
        m.inc("regalloc_functions_optimal_total", &[], 1);
    }
    if let Some(rung) = r.rung {
        m.inc("regalloc_rung_functions_total", &[("rung", rung.name())], 1);
    }
    for reason in &r.reasons {
        m.inc("regalloc_demotions_total", &[("reason", reason.name())], 1);
    }
    if !r.cache_hit && r.warm_start != WarmStartKind::None {
        m.inc(
            "regalloc_warm_starts_total",
            &[("kind", r.warm_start.name())],
            1,
        );
    }
    m.inc("regalloc_solver_nodes_total", &[], r.solver_nodes);
    m.inc("regalloc_solver_lp_iters_total", &[], r.lp_iters);
    // Flight-recorder counters from the solver internals. Deterministic:
    // pure observations of the (already deterministic) pivot sequence.
    m.inc("regalloc_solver_pivots_total", &[], r.health.pivots);
    m.inc(
        "regalloc_solver_degenerate_pivots_total",
        &[],
        r.health.degenerate_pivots,
    );
    m.inc(
        "regalloc_solver_ratio_ties_total",
        &[],
        r.health.ratio_test_ties,
    );
    m.inc(
        "regalloc_presolve_eliminations_total",
        &[],
        r.health.presolve_eliminations,
    );
    // Exact quantile sketches, one observation per function. Solver and
    // model families are deterministic; the task-seconds family is
    // wall-clock (timing-class, excluded from determinism diffs).
    m.observe_quantile("regalloc_solver_nodes_dist", &[], r.solver_nodes as f64);
    m.observe_quantile("regalloc_solver_lp_iters_dist", &[], r.lp_iters as f64);
    m.observe_quantile("regalloc_solver_pivots_dist", &[], r.health.pivots as f64);
    m.observe_quantile("regalloc_task_seconds_dist", &[], r.task_time.as_secs_f64());
    for d in &r.lints {
        m.inc("regalloc_lint_findings_total", &[("code", d.code.slug)], 1);
    }
    if let Some(a) = &r.audit {
        m.inc("regalloc_certificates_checked_total", &[], 1);
        if a.verdict != regalloc_audit::Verdict::Verified {
            m.inc("regalloc_certificates_rejected_total", &[], 1);
        }
    }
    if r.num_vars > 0 {
        m.observe("regalloc_model_vars", &[], SIZE_BUCKETS, r.num_vars as f64);
        m.observe(
            "regalloc_model_constraints",
            &[],
            SIZE_BUCKETS,
            r.num_constraints as f64,
        );
        m.observe_quantile(
            "regalloc_model_constraints_dist",
            &[],
            r.num_constraints as f64,
        );
    }
    if let Some(t) = &r.trace {
        for (phase, d) in &t.phase_times {
            m.observe(
                "regalloc_phase_seconds",
                &[("phase", phase.name())],
                TIME_BUCKETS,
                d.as_secs_f64(),
            );
        }
    }
    m
}
