//! Observatory snapshots — the performance-regression baseline format.
//!
//! A snapshot runs a set of suites under a *deterministic* solver regime
//! (tight node/iteration limits, generous wall-clock limits, cache off,
//! warm starts off — the same regime the trace-determinism tests pin)
//! and renders one schema-versioned JSON document. Every field is either
//!
//! * **deterministic** — solver effort (nodes, LP iterations, pivots,
//!   presolve eliminations), model sizes, outcome counts and exact
//!   nearest-rank quantiles, byte-identical across `--jobs` values and
//!   repeat runs; or
//! * **timing** — wall-clock measurements, quarantined under each
//!   suite's `"timing"` key (and the whole document's key order is
//!   canonical), so consumers strip or zero them with one predicate.
//!
//! `scripts/bench_diff.py` compares two snapshots: deterministic fields
//! exactly (any drift is a hard failure), timing fields advisorily.

use std::fmt::Write as _;
use std::time::Duration;

use regalloc_ir::Function;
use regalloc_machine::TargetId;
use regalloc_workloads::{Benchmark, Suite};

use crate::{run_suite, CacheMode, DriverConfig, SuiteOutcome};

/// Version of the snapshot document layout. Bump on any key change so
/// `bench_diff.py` refuses to compare incompatible snapshots.
pub const SNAPSHOT_SCHEMA: u32 = 1;

/// One named batch of functions the observatory measures.
pub struct SuiteSpec {
    /// Stable name recorded in the snapshot (e.g. `seeded/compress` or
    /// `cc/fib`).
    pub name: String,
    pub functions: Vec<Function>,
}

/// The deterministic solver regime snapshots run under: the limits that
/// normally end a solve (nodes, LP iterations, rows) are deterministic,
/// and the wall-clock limits are generous enough never to bind. Mirrors
/// the trace-determinism test configuration.
pub fn observatory_config(target: TargetId, jobs: usize) -> DriverConfig {
    DriverConfig {
        target,
        jobs,
        solver: regalloc_ilp::SolverConfig {
            time_limit: Duration::from_secs(300),
            lp_iter_limit: 2_000,
            node_limit: 16,
            max_rows: 600,
            ..regalloc_ilp::SolverConfig::default()
        },
        function_budget: Duration::from_secs(300),
        global_budget: None,
        cache: CacheMode::Off,
        warm_starts: false,
        trace: false,
        ..DriverConfig::default()
    }
}

/// The seeded workload suites, one [`SuiteSpec`] per paper benchmark.
pub fn seeded_suites(seed: u64, scale: f64) -> Vec<SuiteSpec> {
    Benchmark::all()
        .iter()
        .map(|&b| {
            let s = Suite::generate_scaled(b, seed, scale);
            SuiteSpec {
                name: format!("seeded/{}", b.name()),
                functions: s.functions,
            }
        })
        .collect()
}

/// Run every suite against every target and render the snapshot
/// document. With `include_timing` off, every `"timing"` value is
/// `null` and the document is byte-identical across `jobs` values and
/// repeat runs.
pub fn snapshot(
    suites: &[SuiteSpec],
    targets: &[TargetId],
    jobs: usize,
    include_timing: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": {SNAPSHOT_SCHEMA},");
    s.push_str("  \"suites\": [\n");
    let mut first = true;
    for spec in suites {
        for &target in targets {
            let cfg = observatory_config(target, jobs);
            let out = run_suite(&spec.functions, &cfg);
            if !first {
                s.push_str(",\n");
            }
            first = false;
            suite_section(&mut s, &spec.name, target, &out, include_timing);
        }
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn suite_section(
    s: &mut String,
    name: &str,
    target: TargetId,
    out: &SuiteOutcome,
    include_timing: bool,
) {
    let st = &out.stats;
    let m = &out.metrics;
    let solved = out.results.iter().filter(|r| r.solved()).count();
    let optimal = out.results.iter().filter(|r| r.solved_optimally()).count();
    let max_dive = out
        .results
        .iter()
        .map(|r| r.health.max_dive_depth)
        .max()
        .unwrap_or(0);
    let model_vars: u64 = out.results.iter().map(|r| r.num_vars as u64).sum();
    let model_constraints: u64 = out.results.iter().map(|r| r.num_constraints as u64).sum();
    let ip_bytes: u64 = out.results.iter().map(|r| r.ip_bytes).sum();

    s.push_str("    {\n");
    let _ = writeln!(s, "      \"suite\": \"{}\",", escape(name));
    let _ = writeln!(s, "      \"target\": \"{}\",", escape(target.name()));
    let _ = writeln!(s, "      \"functions\": {},", st.functions);
    let _ = writeln!(s, "      \"attempted\": {},", st.attempted);
    let _ = writeln!(s, "      \"solved\": {solved},");
    let _ = writeln!(s, "      \"optimal\": {optimal},");
    let _ = writeln!(
        s,
        "      \"nodes\": {},",
        m.counter("regalloc_solver_nodes_total", &[])
    );
    let _ = writeln!(
        s,
        "      \"lp_iters\": {},",
        m.counter("regalloc_solver_lp_iters_total", &[])
    );
    let _ = writeln!(
        s,
        "      \"pivots\": {},",
        m.counter("regalloc_solver_pivots_total", &[])
    );
    let _ = writeln!(
        s,
        "      \"degenerate_pivots\": {},",
        m.counter("regalloc_solver_degenerate_pivots_total", &[])
    );
    let _ = writeln!(
        s,
        "      \"ratio_test_ties\": {},",
        m.counter("regalloc_solver_ratio_ties_total", &[])
    );
    let _ = writeln!(
        s,
        "      \"presolve_eliminations\": {},",
        m.counter("regalloc_presolve_eliminations_total", &[])
    );
    let _ = writeln!(s, "      \"max_dive_depth\": {max_dive},");
    let _ = writeln!(s, "      \"model_vars\": {model_vars},");
    let _ = writeln!(s, "      \"model_constraints\": {model_constraints},");
    let _ = writeln!(s, "      \"ip_bytes\": {ip_bytes},");
    s.push_str("      \"rungs\": {");
    let rungs: Vec<String> = st
        .rungs
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(r, n)| format!("\"{}\": {n}", r.name()))
        .collect();
    s.push_str(&rungs.join(", "));
    s.push_str("},\n");
    s.push_str("      \"quantiles\": {");
    let fams = [
        ("nodes", "regalloc_solver_nodes_dist"),
        ("lp_iters", "regalloc_solver_lp_iters_dist"),
        ("pivots", "regalloc_solver_pivots_dist"),
        ("constraints", "regalloc_model_constraints_dist"),
    ];
    let quants: Vec<String> = fams
        .iter()
        .map(|(label, fam)| {
            let q = |p: f64| m.quantile(fam, &[], p).map_or("null".into(), fnum);
            format!("\"{label}\": [{}, {}, {}]", q(0.5), q(0.95), q(0.99))
        })
        .collect();
    s.push_str(&quants.join(", "));
    s.push_str("},\n");
    if include_timing {
        let solve: f64 = out.results.iter().map(|r| r.solve_time.as_secs_f64()).sum();
        let build: f64 = out.results.iter().map(|r| r.build_time.as_secs_f64()).sum();
        let validate: f64 = out
            .results
            .iter()
            .map(|r| r.validate_time.as_secs_f64())
            .sum();
        s.push_str("      \"timing\": {");
        let _ = write!(
            s,
            "\"wall_seconds\": {}, \"cpu_seconds\": {}, \"build_seconds\": {}, \"solve_seconds\": {}, \"validate_seconds\": {}",
            fnum(st.wall_time.as_secs_f64()),
            fnum(st.cpu_time.as_secs_f64()),
            fnum(build),
            fnum(solve),
            fnum(validate),
        );
        s.push_str("}\n");
    } else {
        s.push_str("      \"timing\": null\n");
    }
    s.push_str("    }");
}

/// Shortest-roundtrip float rendering; integral values print without a
/// fraction, exactly as Rust's `Display` for `f64` does — stable and
/// valid JSON for every finite value.
fn fnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn escape(raw: &str) -> String {
    raw.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suites() -> Vec<SuiteSpec> {
        let s = Suite::generate_scaled(Benchmark::Compress, 7, 0.05);
        vec![SuiteSpec {
            name: "seeded/compress".to_string(),
            functions: s.functions,
        }]
    }

    #[test]
    fn snapshot_has_schema_and_deterministic_fields() {
        let suites = tiny_suites();
        let doc = snapshot(&suites, &[TargetId::X86Pentium], 2, false);
        assert!(doc.starts_with("{\n  \"schema\": 1,"));
        assert!(doc.contains("\"suite\": \"seeded/compress\""));
        assert!(doc.contains("\"target\": \"x86-pentium\""));
        assert!(doc.contains("\"timing\": null"));
        assert!(doc.contains("\"quantiles\""));
    }

    #[test]
    fn snapshot_without_timing_is_reproducible() {
        let suites = tiny_suites();
        let a = snapshot(&suites, &[TargetId::X86Pentium], 1, false);
        let b = snapshot(&suites, &[TargetId::X86Pentium], 2, false);
        assert_eq!(a, b, "snapshots must not depend on worker count");
    }

    #[test]
    fn timing_is_present_when_requested() {
        let suites = tiny_suites();
        let doc = snapshot(&suites, &[TargetId::X86Pentium], 1, true);
        assert!(doc.contains("\"wall_seconds\""));
        assert!(!doc.contains("\"timing\": null"));
    }
}
