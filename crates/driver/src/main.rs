//! Batch allocation CLI.
//!
//! ```console
//! $ cargo run --release -p regalloc-driver -- --jobs 8 --budget-secs 60 xlisp
//! ```
//!
//! Suite arguments are benchmark names (`compress`, `eqntott`, `xlisp`,
//! `sc`, `espresso`, `cc1`), `all` for the whole Table 2 line-up, or
//! paths to textual-IR files (one or more functions per file, as emitted
//! by `gen_workload`). With no suite argument the tool runs `compress`.
//!
//! Output is split into a *deterministic* section (per-function table and
//! allocation summary — byte-identical for any `--jobs` value and for
//! warm vs cold caches) and an *operational* section (timing, throughput,
//! cache traffic) suppressed by `--no-timing` so runs can be diffed.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use regalloc_driver::{
    profile_report, run_suite, trace_jsonl, CacheMode, DriverConfig, SuiteOutcome,
};
use regalloc_ir::Function;
use regalloc_lint::{code_by_name, Code, Report};
use regalloc_machine::TargetId;
use regalloc_workloads::{Benchmark, Suite};

const USAGE: &str = "usage: regalloc-driver [options] [suite...]

suite:        benchmark names (compress eqntott xlisp sc espresso cc1),
              `all`, or paths to textual-IR files; default `compress`

options:
  --target NAME        target machine: x86-pentium (default), risc24, mcu
  --jobs N             worker threads (default: available parallelism)
  --budget-secs S      global wall-clock budget for the whole run
  --function-budget S  per-function wall-clock ceiling (default 8)
  --time-limit S       IP solver time limit per solve (default 2)
  --node-limit N       branch-and-bound node limit per solve
  --lp-iter-limit N    total simplex iteration limit per solve
  --scale F            workload scale factor (default 0.1)
  --seed N             workload generator seed (default 1998)
  --cache-dir DIR      persistent cache directory (default results/cache)
  --no-cache           in-memory dedup only, nothing persisted
  --cache-max-entries N  LRU-evict beyond N cached solutions (default
                       unlimited)
  --cache-max-bytes N  LRU-evict once serialized entries exceed N bytes
                       (default unlimited)
  --warm-starts MODE   on|off: seed cache misses with the nearest cached
                       symbolic solution (default on)
  --warm-distance F    max shape distance for a warm-start donor, 0..1
                       (default 0.25)
  --perturb SEED       deterministically perturb immediates in the loaded
                       suite (same shapes, different bodies)
  --dump-allocs FILE   write every accepted allocation to FILE
  --lint               run allocation-quality lints over accepted code
  --lint-format FMT    lint output format: text (default), json, sarif
  --lint-out FILE      write the lint report to FILE instead of stdout
  --deny CODE          exit nonzero if lint CODE fires (id like L001 or
                       slug like dead-spill-store; repeatable)
  --audit              audit every optimality claim with the exact-rational
                       certificate checker; rejected claims are demoted to
                       ip-incumbent, and ip-optimal cache hits are only
                       trusted after their stored certificate re-verifies
  --audit-deny         --audit, and exit nonzero if any certificate is
                       rejected or missing
  --trace-out FILE     write the structured solve trace as JSONL (event
                       records first, then `\"type\":\"timing\"` records)
  --metrics-out FILE   write the merged metrics registry in Prometheus
                       text exposition format
  --profile            print a self-profiling report (per-phase time,
                       cache/warm-start traffic, degradation ladder)
  --no-timing          suppress the non-deterministic timing section
  --help               this text";

#[derive(Clone, Copy, PartialEq, Eq)]
enum LintFormat {
    Text,
    Json,
    Sarif,
}

struct Cli {
    cfg: DriverConfig,
    scale: f64,
    seed: u64,
    perturb: Option<u64>,
    suite_args: Vec<String>,
    dump_allocs: Option<PathBuf>,
    timing: bool,
    lint_format: LintFormat,
    lint_out: Option<PathBuf>,
    deny: Vec<Code>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    profile: bool,
    audit_deny: bool,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        cfg: DriverConfig {
            cache: CacheMode::Disk(PathBuf::from("results/cache")),
            ..DriverConfig::default()
        },
        scale: 0.1,
        seed: 1998,
        perturb: None,
        suite_args: Vec::new(),
        dump_allocs: None,
        timing: true,
        lint_format: LintFormat::Text,
        lint_out: None,
        deny: Vec::new(),
        trace_out: None,
        metrics_out: None,
        profile: false,
        audit_deny: false,
    };
    cli.cfg.compare_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--target" => {
                let name = value("--target")?;
                cli.cfg.target = TargetId::parse(&name).ok_or_else(|| {
                    let known: Vec<&str> = TargetId::ALL.iter().map(|t| t.name()).collect();
                    format!(
                        "--target: unknown target `{name}` (registered targets: {})",
                        known.join(", ")
                    )
                })?;
            }
            "--jobs" => {
                cli.cfg.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--budget-secs" => {
                let s: f64 = value("--budget-secs")?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?;
                cli.cfg.global_budget = Some(Duration::from_secs_f64(s));
            }
            "--function-budget" => {
                let s: f64 = value("--function-budget")?
                    .parse()
                    .map_err(|e| format!("--function-budget: {e}"))?;
                cli.cfg.function_budget = Duration::from_secs_f64(s);
            }
            "--time-limit" => {
                let s: f64 = value("--time-limit")?
                    .parse()
                    .map_err(|e| format!("--time-limit: {e}"))?;
                cli.cfg.solver.time_limit = Duration::from_secs_f64(s);
            }
            "--node-limit" => {
                cli.cfg.solver.node_limit = value("--node-limit")?
                    .parse()
                    .map_err(|e| format!("--node-limit: {e}"))?
            }
            "--lp-iter-limit" => {
                cli.cfg.solver.lp_iter_limit = value("--lp-iter-limit")?
                    .parse()
                    .map_err(|e| format!("--lp-iter-limit: {e}"))?
            }
            "--scale" => {
                cli.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--cache-dir" => cli.cfg.cache = CacheMode::Disk(PathBuf::from(value("--cache-dir")?)),
            "--no-cache" => cli.cfg.cache = CacheMode::Memory,
            "--cache-max-entries" => {
                cli.cfg.cache_limits.max_entries = Some(
                    value("--cache-max-entries")?
                        .parse()
                        .map_err(|e| format!("--cache-max-entries: {e}"))?,
                )
            }
            "--cache-max-bytes" => {
                cli.cfg.cache_limits.max_bytes = Some(
                    value("--cache-max-bytes")?
                        .parse()
                        .map_err(|e| format!("--cache-max-bytes: {e}"))?,
                )
            }
            "--warm-starts" => {
                cli.cfg.warm_starts = match value("--warm-starts")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--warm-starts: expected on|off, got `{other}`")),
                }
            }
            "--warm-distance" => {
                cli.cfg.warm_start_distance = value("--warm-distance")?
                    .parse()
                    .map_err(|e| format!("--warm-distance: {e}"))?
            }
            "--perturb" => {
                cli.perturb = Some(
                    value("--perturb")?
                        .parse()
                        .map_err(|e| format!("--perturb: {e}"))?,
                )
            }
            "--dump-allocs" => cli.dump_allocs = Some(PathBuf::from(value("--dump-allocs")?)),
            "--lint" => cli.cfg.lint = true,
            "--lint-format" => {
                cli.cfg.lint = true;
                cli.lint_format = match value("--lint-format")?.as_str() {
                    "text" => LintFormat::Text,
                    "json" => LintFormat::Json,
                    "sarif" => LintFormat::Sarif,
                    other => return Err(format!("--lint-format: unknown format `{other}`")),
                };
            }
            "--lint-out" => {
                cli.cfg.lint = true;
                cli.lint_out = Some(PathBuf::from(value("--lint-out")?));
            }
            "--deny" => {
                cli.cfg.lint = true;
                let name = value("--deny")?;
                cli.deny.push(
                    code_by_name(&name)
                        .ok_or_else(|| format!("--deny: unknown diagnostic code `{name}`"))?,
                );
            }
            "--audit" => cli.cfg.audit = true,
            "--audit-deny" => {
                cli.cfg.audit = true;
                cli.audit_deny = true;
            }
            "--trace-out" => {
                cli.cfg.trace = true;
                cli.trace_out = Some(PathBuf::from(value("--trace-out")?));
            }
            "--metrics-out" => {
                cli.cfg.trace = true;
                cli.metrics_out = Some(PathBuf::from(value("--metrics-out")?));
            }
            "--profile" => {
                cli.cfg.trace = true;
                cli.profile = true;
            }
            "--no-timing" => cli.timing = false,
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}\n\n{USAGE}"))
            }
            other => cli.suite_args.push(other.to_string()),
        }
    }
    if cli.suite_args.is_empty() {
        cli.suite_args.push("compress".to_string());
    }
    Ok(cli)
}

fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    Benchmark::all().into_iter().find(|b| b.name() == name)
}

/// Split a textual-IR file into functions (`fn ...` through the closing
/// `}` at column zero) and parse each.
fn parse_ir_file(path: &str) -> Result<Vec<Function>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    regalloc_driver::parse_functions(path, &text)
}

fn load_suite(cli: &Cli) -> Result<Vec<Function>, String> {
    let mut funcs = Vec::new();
    for arg in &cli.suite_args {
        if arg == "all" {
            for b in Benchmark::all() {
                funcs.extend(Suite::generate_scaled(b, cli.seed, cli.scale).functions);
            }
        } else if let Some(b) = benchmark_by_name(arg) {
            funcs.extend(Suite::generate_scaled(b, cli.seed, cli.scale).functions);
        } else if std::path::Path::new(arg).exists() {
            funcs.extend(parse_ir_file(arg)?);
        } else {
            return Err(format!(
                "`{arg}` is neither a benchmark name nor a file\n\n{USAGE}"
            ));
        }
    }
    if let Some(seed) = cli.perturb {
        funcs = funcs
            .iter()
            .enumerate()
            .map(|(i, f)| regalloc_workloads::perturb_immediates(f, seed.wrapping_add(i as u64)))
            .collect();
    }
    Ok(funcs)
}

fn print_deterministic(out: &SuiteOutcome) {
    println!(
        "{:<18} {:>6} {:>8} {:>7} {:<11} {:>7} {:>7}",
        "function", "insts", "constrs", "vars", "rung", "spills", "bytes"
    );
    for r in &out.results {
        if !r.attempted {
            println!(
                "{:<18} {:>6} {:>8} {:>7} {:<11}",
                r.name, r.num_insts, "-", "-", "skip64"
            );
            continue;
        }
        let spills = r.stats.loads + r.stats.stores + r.stats.remats;
        println!(
            "{:<18} {:>6} {:>8} {:>7} {:<11} {:>7} {:>7}",
            r.name,
            r.num_insts,
            r.num_constraints,
            r.num_vars,
            r.rung.map_or("error", |x| x.name()),
            spills,
            r.ip_bytes,
        );
    }
    println!();
    let solved = out.results.iter().filter(|r| r.solved()).count();
    let optimal = out.results.iter().filter(|r| r.solved_optimally()).count();
    println!(
        "functions {}  attempted {}  ip-solved {}  optimal {}",
        out.stats.functions, out.stats.attempted, solved, optimal
    );
    let rungs: Vec<String> = out
        .stats
        .rungs
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(r, n)| format!("{} {}", r.name(), n))
        .collect();
    println!("rungs: {}", rungs.join("  "));
    println!(
        "warm-starts: exact {}  projected {}",
        out.stats.warm_exact, out.stats.warm_projected
    );
    // One audit per optimality claim (fresh solve or re-audited hit), so
    // the counts are deterministic across `--jobs` values.
    let audits: Vec<_> = out
        .results
        .iter()
        .filter_map(|r| r.audit.as_ref())
        .collect();
    if !audits.is_empty() {
        let verified = audits
            .iter()
            .filter(|a| a.verdict == regalloc_audit::Verdict::Verified)
            .count();
        println!(
            "certificates: {} verified  {} rejected",
            verified,
            audits.len() - verified
        );
    }
    // One aggregate cost line so warm-on vs warm-off runs can be compared
    // with a single grep: warm starts may only prune the search, never
    // change what is accepted.
    let attempted = out.results.iter().filter(|r| r.attempted);
    let (mut loads, mut stores, mut remats, mut copies, mut bytes) = (0i64, 0i64, 0i64, 0i64, 0u64);
    for r in attempted {
        loads += r.stats.loads;
        stores += r.stats.stores;
        remats += r.stats.remats;
        copies += r.stats.copies;
        bytes += r.ip_bytes;
    }
    println!(
        "totals: loads {loads}  stores {stores}  remats {remats}  copies {copies}  bytes {bytes}"
    );
}

fn print_timing(out: &SuiteOutcome) {
    let s = &out.stats;
    println!();
    println!(
        "wall {:.3}s  cpu {:.3}s  speedup {:.2}x  jobs {}  utilization {:.0}%",
        s.wall_time.as_secs_f64(),
        s.cpu_time.as_secs_f64(),
        s.speedup(),
        s.jobs,
        s.utilization() * 100.0
    );
    println!(
        "throughput {:.1} fn/s  cache: {} hits / {} misses ({:.0}% hit rate), {} rejected",
        s.throughput(),
        s.cache_hits,
        s.cache_misses,
        s.hit_rate() * 100.0,
        s.cache_rejected
    );
}

/// Assemble the suite's lint report in suite order (results already come
/// back in suite order, so this is deterministic across `--jobs` values).
fn lint_report(out: &SuiteOutcome) -> Report {
    let mut report = Report::default();
    for r in &out.results {
        if !r.lints.is_empty() {
            report.push(r.name.clone(), r.lints.clone());
        }
    }
    report
}

fn emit_lints(cli: &Cli, out: &SuiteOutcome) -> Result<usize, String> {
    let report = lint_report(out);
    let text = match cli.lint_format {
        LintFormat::Text => {
            let mut t = report.to_text();
            if report.is_empty() {
                t.push_str("lint: clean\n");
            } else {
                t.push_str(&format!("lint: {} finding(s)\n", report.len()));
            }
            t
        }
        LintFormat::Json => report.to_json(),
        LintFormat::Sarif => report.to_sarif(),
    };
    match &cli.lint_out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))?,
        None => print!("{text}"),
    }
    let denied: usize = cli.deny.iter().map(|c| report.count_of(*c)).sum();
    for c in &cli.deny {
        let n = report.count_of(*c);
        if n > 0 {
            eprintln!("error: denied lint {c} fired {n} time(s)");
        }
    }
    Ok(denied)
}

fn dump_allocs(path: &PathBuf, out: &SuiteOutcome) -> Result<(), String> {
    use std::fmt::Write as _;
    let mut text = String::new();
    for r in &out.results {
        if let Some(f) = &r.func {
            let _ = writeln!(text, "{f}\n");
        }
    }
    std::fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Run the M1xx structural self-check over every registered target
/// model. A diagnostic here means the machine description itself is
/// inconsistent — refusing to allocate anything is the only safe answer.
fn self_check_targets() -> Result<(), String> {
    use std::fmt::Write as _;
    let mut msg = String::new();
    for (id, m) in regalloc_core::targets::all() {
        for d in regalloc_machine::check_machine(m.as_ref()) {
            let diag = regalloc_lint::Diagnostic::from(&d);
            let _ = writeln!(msg, "target {id}: [{}] {}", diag.code.id, d.message);
        }
    }
    if msg.is_empty() {
        Ok(())
    } else {
        Err(format!("target model self-check failed:\n{msg}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(msg) = self_check_targets() {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    let funcs = match load_suite(&cli) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let out = run_suite(&funcs, &cli.cfg);
    print_deterministic(&out);
    let mut denied = 0;
    if cli.cfg.lint {
        match emit_lints(&cli, &out) {
            Ok(n) => denied = n,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cli.timing {
        print_timing(&out);
    }
    if cli.profile {
        println!();
        print!("{}", profile_report(&out));
    }
    if let Some(path) = &cli.trace_out {
        if let Err(e) = std::fs::write(path, trace_jsonl(&out)) {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &cli.metrics_out {
        if let Err(e) = std::fs::write(path, out.metrics.to_prometheus()) {
            eprintln!("{}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &cli.dump_allocs {
        if let Err(msg) = dump_allocs(path, &out) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    let mut audit_denied = 0usize;
    if cli.audit_deny {
        for r in &out.results {
            if let Some(a) = &r.audit {
                if a.verdict != regalloc_audit::Verdict::Verified {
                    audit_denied += 1;
                    eprintln!(
                        "error: {}: certificate audit failed ({})",
                        r.name,
                        a.code.unwrap_or("missing")
                    );
                }
            }
        }
    }
    if out.results.iter().any(|r| r.error.is_some()) || denied > 0 || audit_denied > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
