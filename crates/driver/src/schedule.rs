//! Deadline-aware scheduling: cheapest-model-first ordering, the global
//! wall-clock budget governor (batch runs), and per-client token-bucket
//! budgets ([`ClientBudgets`], the daemon's multi-tenant fair share).
//!
//! The paper bounds every function with the same 1024-second CPLEX
//! budget; a batch service has the dual problem — a budget for the *whole
//! suite* that must be divided among functions of wildly uneven cost.
//! Two mechanisms cooperate:
//!
//! 1. **Ordering.** The queue is sorted by the analysis-free
//!    constraint-count estimate
//!    ([`regalloc_core::build::estimate_constraints`]), cheapest first.
//!    Cheap functions are both quick *and* near-certain to solve
//!    optimally, so when the budget starts to drain the casualties are
//!    confined to the expensive tail — the same functions the paper's
//!    per-function limit sacrificed.
//! 2. **Budget shrinking.** Each dequeued function asks the
//!    [`BudgetGovernor`] for a wall-clock grant: its fair share of the
//!    remaining global budget across the remaining functions (scaled by
//!    the worker count, since `jobs` workers consume wall-clock
//!    concurrently), capped at the configured per-function budget. As the
//!    budget drains the grants shrink; once it is exhausted the grant is
//!    zero and the degradation ladder falls straight through to its
//!    always-terminating fallback rungs — tail functions demote, they
//!    never hang.
//!
//! Determinism: the governor only changes *outcomes* when the global
//! budget binds. With no global budget (or an ample one) every function
//! receives the full per-function grant and results are independent of
//! timing and worker count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use regalloc_ilp::Deadline;
use regalloc_ir::Function;

/// The dispatch plan for a suite: estimates and the cheapest-first order.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Constraint-count estimate per function (item-index order).
    pub estimates: Vec<usize>,
    /// Item indices sorted cheapest-first (ties broken by index, so the
    /// plan is deterministic).
    pub order: Vec<usize>,
}

/// Build the dispatch plan for `funcs`.
pub fn plan(funcs: &[Function]) -> Schedule {
    let estimates: Vec<usize> = funcs
        .iter()
        .map(regalloc_core::build::estimate_constraints)
        .collect();
    let mut order: Vec<usize> = (0..funcs.len()).collect();
    order.sort_by_key(|&i| (estimates[i], i));
    Schedule { estimates, order }
}

/// Divides a global wall-clock budget among the remaining functions.
pub struct BudgetGovernor {
    global: Deadline,
    per_fn: Duration,
    jobs: usize,
    remaining: AtomicUsize,
}

impl BudgetGovernor {
    /// A governor over `tasks` functions. `global = None` disables the
    /// global budget entirely; `per_fn` is the ceiling any single
    /// function may receive.
    pub fn new(
        global: Option<Duration>,
        per_fn: Duration,
        jobs: usize,
        tasks: usize,
    ) -> BudgetGovernor {
        BudgetGovernor {
            global: global.map_or(Deadline::unlimited(), Deadline::after),
            per_fn,
            jobs: jobs.max(1),
            remaining: AtomicUsize::new(tasks),
        }
    }

    /// Grant a wall-clock budget to the next dequeued function and
    /// consume its slot in the fair-share calculation. Granting more
    /// often than the planned task count (a zero-function suite, or a
    /// long-running daemon reusing one governor) saturates at "one
    /// function left" rather than underflowing the fair share.
    pub fn grant(&self) -> Duration {
        let left = self.consume_slot().max(1);
        match self.global.remaining() {
            None => self.per_fn,
            Some(rem) if rem.is_zero() => Duration::ZERO,
            Some(rem) => {
                // `jobs` workers drain wall clock concurrently, so the
                // share of the remaining window for one of `left`
                // functions is rem * jobs / left.
                let share = rem.mul_f64(self.jobs as f64 / left as f64);
                share.min(self.per_fn)
            }
        }
    }

    /// Release a slot without consuming budget (cache hits cost no solver
    /// time, so they should not shrink anyone else's share).
    pub fn skip(&self) {
        self.consume_slot();
    }

    /// Decrement the remaining-task count without wrapping below zero;
    /// returns the value *before* the decrement.
    fn consume_slot(&self) -> usize {
        self.remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            })
            .unwrap_or(0)
    }

    /// True once the global budget has fully drained.
    pub fn exhausted(&self) -> bool {
        self.global.expired()
    }
}

/// How a per-client grant compares to what was asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantDisposition {
    /// The full requested budget was granted.
    Full,
    /// The client's bucket covered only part of the request
    /// (`DEADLINE_SHRUNK` on the wire): the function still solves, under
    /// a smaller deadline that may demote it down the ladder.
    Shrunk,
    /// The bucket is empty (`BUDGET_EXHAUSTED`): the grant is zero and
    /// the ladder falls straight through to its always-terminating
    /// fallback rungs.
    Exhausted,
}

impl GrantDisposition {
    /// Short stable name (wire protocol and metrics label).
    pub fn name(self) -> &'static str {
        match self {
            GrantDisposition::Full => "full",
            GrantDisposition::Shrunk => "shrunk",
            GrantDisposition::Exhausted => "exhausted",
        }
    }

    fn of(want: Duration, granted: Duration) -> GrantDisposition {
        if granted.is_zero() && !want.is_zero() {
            GrantDisposition::Exhausted
        } else if granted < want {
            GrantDisposition::Shrunk
        } else {
            GrantDisposition::Full
        }
    }
}

/// One tenant's token bucket, in fractional seconds of solver time.
struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// Per-client fair-share solver-time budgets for the multi-tenant daemon
/// — the [`BudgetGovernor`]'s dual. Where the governor divides one global
/// wall clock among the functions of a single batch, `ClientBudgets`
/// gives every client its own token bucket (capacity = burst, refill
/// rate = sustained solver-seconds per wall-clock second) so one tenant
/// flooding huge functions drains *its own* bucket and cannot starve
/// anyone else's.
///
/// Admission *reserves* pessimistically ([`ClientBudgets::charge`] takes
/// the full requested deadline out of the bucket) and completion
/// *settles* optimistically ([`ClientBudgets::settle`] refunds the
/// unused remainder), so a burst of cheap cache hits costs almost
/// nothing while a tenant with many expensive solves in flight sees its
/// later grants shrink toward zero.
pub struct ClientBudgets {
    capacity: Duration,
    refill_per_sec: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl ClientBudgets {
    /// Buckets of `capacity` solver-time, refilling at `refill_per_sec`
    /// seconds of budget per second of wall clock (0.0 = no refill; the
    /// bucket is a hard per-client allowance).
    pub fn new(capacity: Duration, refill_per_sec: f64) -> ClientBudgets {
        ClientBudgets {
            capacity,
            refill_per_sec: refill_per_sec.max(0.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    fn refill(&self, b: &mut Bucket, now: Instant) {
        if self.refill_per_sec > 0.0 {
            let dt = now.duration_since(b.last_refill).as_secs_f64();
            b.tokens = (b.tokens + dt * self.refill_per_sec).min(self.capacity.as_secs_f64());
        }
        b.last_refill = now;
    }

    /// Reserve up to `want` from `client`'s bucket; returns the granted
    /// deadline and how it compares to the request. A function larger
    /// than the whole bucket is *shrunk to the bucket*, never refused —
    /// the degradation ladder turns a small grant into a demoted
    /// allocation rather than an error.
    pub fn charge(&self, client: &str, want: Duration) -> (Duration, GrantDisposition) {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let b = buckets.entry(client.to_string()).or_insert(Bucket {
            tokens: self.capacity.as_secs_f64(),
            last_refill: now,
        });
        self.refill(b, now);
        let granted = want.as_secs_f64().min(b.tokens).max(0.0);
        b.tokens -= granted;
        let granted = Duration::from_secs_f64(granted);
        (granted, GrantDisposition::of(want, granted))
    }

    /// Refund the unused part of a reservation once the request finished:
    /// `granted - used`, saturating, capped at the bucket capacity.
    pub fn settle(&self, client: &str, granted: Duration, used: Duration) {
        let refund = granted.saturating_sub(used);
        if refund.is_zero() {
            return;
        }
        let mut buckets = self.buckets.lock().unwrap();
        if let Some(b) = buckets.get_mut(client) {
            b.tokens = (b.tokens + refund.as_secs_f64()).min(self.capacity.as_secs_f64());
        }
    }

    /// The client's current balance (full capacity for a never-seen
    /// client).
    pub fn available(&self, client: &str) -> Duration {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        match buckets.get_mut(client) {
            None => self.capacity,
            Some(b) => {
                self.refill(b, now);
                Duration::from_secs_f64(b.tokens.max(0.0))
            }
        }
    }

    /// Number of clients with a bucket.
    pub fn clients(&self) -> usize {
        self.buckets.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::{BinOp, FunctionBuilder, Operand, Width};

    fn chain(n: usize) -> Function {
        let mut b = FunctionBuilder::new("c");
        let mut x = b.new_sym(Width::B32);
        b.load_imm(x, 1);
        for _ in 0..n {
            let y = b.new_sym(Width::B32);
            b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(1));
            x = y;
        }
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn plan_orders_cheapest_first() {
        let funcs = vec![chain(30), chain(2), chain(10)];
        let s = plan(&funcs);
        assert_eq!(s.order, vec![1, 2, 0]);
        assert!(s.estimates[1] < s.estimates[2]);
    }

    #[test]
    fn unlimited_governor_grants_the_full_per_function_budget() {
        let g = BudgetGovernor::new(None, Duration::from_secs(5), 4, 100);
        for _ in 0..100 {
            assert_eq!(g.grant(), Duration::from_secs(5));
        }
        assert!(!g.exhausted());
    }

    #[test]
    fn exhausted_budget_grants_zero() {
        let g = BudgetGovernor::new(Some(Duration::ZERO), Duration::from_secs(5), 2, 10);
        assert!(g.exhausted());
        assert_eq!(g.grant(), Duration::ZERO);
    }

    #[test]
    fn client_buckets_shrink_then_exhaust_independently() {
        // No refill: a hard allowance, so the arithmetic is deterministic.
        let budgets = ClientBudgets::new(Duration::from_millis(100), 0.0);
        let want = Duration::from_millis(80);
        let (g, d) = budgets.charge("a", want);
        assert_eq!((g, d), (want, GrantDisposition::Full));
        // 20ms left: the next request is shrunk, not refused.
        let (g, d) = budgets.charge("a", want);
        assert_eq!(
            (g, d),
            (Duration::from_millis(20), GrantDisposition::Shrunk)
        );
        // Empty: exhausted, zero grant.
        let (g, d) = budgets.charge("a", want);
        assert_eq!((g, d), (Duration::ZERO, GrantDisposition::Exhausted));
        // Client b's bucket is untouched by a's flood.
        let (g, d) = budgets.charge("b", want);
        assert_eq!((g, d), (want, GrantDisposition::Full));
        assert_eq!(budgets.clients(), 2);
    }

    #[test]
    fn oversized_request_is_shrunk_to_the_bucket_not_refused() {
        let budgets = ClientBudgets::new(Duration::from_secs(1), 0.0);
        let (g, d) = budgets.charge("a", Duration::from_secs(100));
        assert_eq!(g, Duration::from_secs(1));
        assert_eq!(d, GrantDisposition::Shrunk);
    }

    #[test]
    fn settle_refunds_unused_reservation_up_to_capacity() {
        let budgets = ClientBudgets::new(Duration::from_millis(100), 0.0);
        let (g, _) = budgets.charge("a", Duration::from_millis(100));
        // The solve actually used 10ms of the 100ms reservation.
        budgets.settle("a", g, Duration::from_millis(10));
        assert_eq!(budgets.available("a"), Duration::from_millis(90));
        // Refunds never overflow the bucket.
        budgets.settle("a", Duration::from_secs(100), Duration::ZERO);
        assert_eq!(budgets.available("a"), Duration::from_millis(100));
        // Using more than granted refunds nothing (and never underflows).
        let (g, _) = budgets.charge("a", Duration::from_millis(50));
        budgets.settle("a", g, Duration::from_secs(9));
        assert_eq!(budgets.available("a"), Duration::from_millis(50));
    }

    #[test]
    fn governor_slots_saturate_instead_of_underflowing() {
        // A zero-function suite (or a daemon granting past the planned
        // count) must keep granting sane fair shares, not divide by a
        // wrapped-around usize.
        let g = BudgetGovernor::new(Some(Duration::from_secs(10)), Duration::from_secs(1), 1, 0);
        for _ in 0..3 {
            let grant = g.grant();
            assert_eq!(
                grant,
                Duration::from_secs(1),
                "saturated fair share stays at the per-function ceiling"
            );
        }
        g.skip();
        assert_eq!(g.grant(), Duration::from_secs(1));
    }

    #[test]
    fn shares_shrink_with_the_queue_and_never_exceed_the_ceiling() {
        let per_fn = Duration::from_secs(10);
        let g = BudgetGovernor::new(Some(Duration::from_secs(1)), per_fn, 1, 1000);
        let first = g.grant();
        assert!(first <= per_fn);
        assert!(
            first <= Duration::from_millis(2),
            "1s over 1000 tasks is ~1ms, got {first:?}"
        );
        // Skipping (cache hits) still drains slots.
        for _ in 0..500 {
            g.skip();
        }
        let later = g.grant();
        assert!(later <= per_fn);
    }
}
