//! Deadline-aware scheduling: cheapest-model-first ordering and the
//! global wall-clock budget governor.
//!
//! The paper bounds every function with the same 1024-second CPLEX
//! budget; a batch service has the dual problem — a budget for the *whole
//! suite* that must be divided among functions of wildly uneven cost.
//! Two mechanisms cooperate:
//!
//! 1. **Ordering.** The queue is sorted by the analysis-free
//!    constraint-count estimate
//!    ([`regalloc_core::build::estimate_constraints`]), cheapest first.
//!    Cheap functions are both quick *and* near-certain to solve
//!    optimally, so when the budget starts to drain the casualties are
//!    confined to the expensive tail — the same functions the paper's
//!    per-function limit sacrificed.
//! 2. **Budget shrinking.** Each dequeued function asks the
//!    [`BudgetGovernor`] for a wall-clock grant: its fair share of the
//!    remaining global budget across the remaining functions (scaled by
//!    the worker count, since `jobs` workers consume wall-clock
//!    concurrently), capped at the configured per-function budget. As the
//!    budget drains the grants shrink; once it is exhausted the grant is
//!    zero and the degradation ladder falls straight through to its
//!    always-terminating fallback rungs — tail functions demote, they
//!    never hang.
//!
//! Determinism: the governor only changes *outcomes* when the global
//! budget binds. With no global budget (or an ample one) every function
//! receives the full per-function grant and results are independent of
//! timing and worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use regalloc_ilp::Deadline;
use regalloc_ir::Function;

/// The dispatch plan for a suite: estimates and the cheapest-first order.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Constraint-count estimate per function (item-index order).
    pub estimates: Vec<usize>,
    /// Item indices sorted cheapest-first (ties broken by index, so the
    /// plan is deterministic).
    pub order: Vec<usize>,
}

/// Build the dispatch plan for `funcs`.
pub fn plan(funcs: &[Function]) -> Schedule {
    let estimates: Vec<usize> = funcs
        .iter()
        .map(regalloc_core::build::estimate_constraints)
        .collect();
    let mut order: Vec<usize> = (0..funcs.len()).collect();
    order.sort_by_key(|&i| (estimates[i], i));
    Schedule { estimates, order }
}

/// Divides a global wall-clock budget among the remaining functions.
pub struct BudgetGovernor {
    global: Deadline,
    per_fn: Duration,
    jobs: usize,
    remaining: AtomicUsize,
}

impl BudgetGovernor {
    /// A governor over `tasks` functions. `global = None` disables the
    /// global budget entirely; `per_fn` is the ceiling any single
    /// function may receive.
    pub fn new(
        global: Option<Duration>,
        per_fn: Duration,
        jobs: usize,
        tasks: usize,
    ) -> BudgetGovernor {
        BudgetGovernor {
            global: global.map_or(Deadline::unlimited(), Deadline::after),
            per_fn,
            jobs: jobs.max(1),
            remaining: AtomicUsize::new(tasks),
        }
    }

    /// Grant a wall-clock budget to the next dequeued function and
    /// consume its slot in the fair-share calculation.
    pub fn grant(&self) -> Duration {
        let left = self.remaining.fetch_sub(1, Ordering::Relaxed).max(1);
        match self.global.remaining() {
            None => self.per_fn,
            Some(rem) if rem.is_zero() => Duration::ZERO,
            Some(rem) => {
                // `jobs` workers drain wall clock concurrently, so the
                // share of the remaining window for one of `left`
                // functions is rem * jobs / left.
                let share = rem.mul_f64(self.jobs as f64 / left as f64);
                share.min(self.per_fn)
            }
        }
    }

    /// Release a slot without consuming budget (cache hits cost no solver
    /// time, so they should not shrink anyone else's share).
    pub fn skip(&self) {
        self.remaining.fetch_sub(1, Ordering::Relaxed);
    }

    /// True once the global budget has fully drained.
    pub fn exhausted(&self) -> bool {
        self.global.expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::{BinOp, FunctionBuilder, Operand, Width};

    fn chain(n: usize) -> Function {
        let mut b = FunctionBuilder::new("c");
        let mut x = b.new_sym(Width::B32);
        b.load_imm(x, 1);
        for _ in 0..n {
            let y = b.new_sym(Width::B32);
            b.bin(BinOp::Add, y, Operand::sym(x), Operand::Imm(1));
            x = y;
        }
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn plan_orders_cheapest_first() {
        let funcs = vec![chain(30), chain(2), chain(10)];
        let s = plan(&funcs);
        assert_eq!(s.order, vec![1, 2, 0]);
        assert!(s.estimates[1] < s.estimates[2]);
    }

    #[test]
    fn unlimited_governor_grants_the_full_per_function_budget() {
        let g = BudgetGovernor::new(None, Duration::from_secs(5), 4, 100);
        for _ in 0..100 {
            assert_eq!(g.grant(), Duration::from_secs(5));
        }
        assert!(!g.exhausted());
    }

    #[test]
    fn exhausted_budget_grants_zero() {
        let g = BudgetGovernor::new(Some(Duration::ZERO), Duration::from_secs(5), 2, 10);
        assert!(g.exhausted());
        assert_eq!(g.grant(), Duration::ZERO);
    }

    #[test]
    fn shares_shrink_with_the_queue_and_never_exceed_the_ceiling() {
        let per_fn = Duration::from_secs(10);
        let g = BudgetGovernor::new(Some(Duration::from_secs(1)), per_fn, 1, 1000);
        let first = g.grant();
        assert!(first <= per_fn);
        assert!(
            first <= Duration::from_millis(2),
            "1s over 1000 tasks is ~1ms, got {first:?}"
        );
        // Skipping (cache hits) still drains slots.
        for _ in 0..500 {
            g.skip();
        }
        let later = g.grant();
        assert!(later <= per_fn);
    }
}
