//! The content-addressed solution cache.
//!
//! Register allocation is a pure function of (function body, machine
//! model, solver configuration), and bench suites are regenerated from
//! seeds — so across runs the service sees the *same* allocation problems
//! over and over. The cache memoizes solved allocations under a canonical
//! content key so repeat runs are warm:
//!
//! * **Key** — FNV-1a over the function-body fingerprint
//!   ([`regalloc_ir::fingerprint`], stable across processes and
//!   print/parse round trips and independent of the function *name*),
//!   chained with the machine-model name and every solver-configuration
//!   field. Change any input and the key changes; rename a function and
//!   it does not.
//! * **Entry** — the full allocated function in canonical text, the spill
//!   slot table the text cannot carry (widths, §5.5 home coalescing), the
//!   spill statistics, model statistics and the degradation-ladder
//!   outcome; guarded by a checksum over the payload.
//! * **Persistence** — one file per entry under the cache directory
//!   (`results/cache/` for the bench harness), written atomically
//!   (temp file + rename) so concurrent workers never expose torn
//!   entries.
//!
//! **A hit is never trusted blindly.** The stored allocation is re-parsed
//! and replayed through [`regalloc_ir::verify_allocated`]; a checksum
//! mismatch, parse failure, malformed field or verification error rejects
//! the entry (counted in [`SolutionCache::rejected`]) and the driver
//! falls through to a fresh solve. A poisoned cache can therefore cost
//! time, never correctness.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use regalloc_core::{ReasonCode, Rung, SpillStats};
use regalloc_ilp::SolverConfig;
use regalloc_ir::fingerprint::{fingerprint, fnv1a, FNV_OFFSET};
use regalloc_ir::{parse_function, verify_allocated, Function, SlotId, SlotInfo, Width};

/// First line of every cache file; bump the version to invalidate old
/// entries wholesale on a format change.
pub const MAGIC: &str = "regalloc-cache v1";

/// Checksum guarding an entry's payload (everything after the `check`
/// line). Public so tooling and tests can produce well-formed entries.
pub fn checksum(payload: &str) -> u64 {
    fnv1a(FNV_OFFSET, payload.as_bytes())
}

/// The content key for allocating `f` on `machine_name` under `solver`.
pub fn cache_key(f: &Function, machine_name: &str, solver: &SolverConfig) -> u64 {
    let mut h = fingerprint(f);
    h = fnv1a(h, machine_name.as_bytes());
    h = fnv1a(h, &solver.time_limit.as_nanos().to_le_bytes());
    h = fnv1a(h, &solver.lp_iter_limit.to_le_bytes());
    h = fnv1a(h, &solver.node_limit.to_le_bytes());
    h = fnv1a(h, &(solver.max_rows as u64).to_le_bytes());
    h
}

/// One cached allocation: everything the driver needs to reproduce a
/// solved function's result without re-running the solver.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// Degradation-ladder rung that produced the allocation.
    pub rung: Rung,
    /// Demotion reasons recorded on the way down.
    pub reasons: Vec<ReasonCode>,
    /// Spill accounting of the accepted allocation.
    pub stats: SpillStats,
    /// Constraints in the integer program.
    pub num_constraints: usize,
    /// Decision variables in the integer program.
    pub num_vars: usize,
    /// Intermediate instructions analysed.
    pub num_insts: usize,
    /// Branch-and-bound nodes the original solve used.
    pub solver_nodes: u64,
    /// Encoded size of the allocation, in bytes.
    pub ip_bytes: u64,
    /// The spill-slot table (the canonical text carries only slot
    /// *references*).
    pub slots: Vec<SlotInfo>,
    /// The allocated function in canonical textual form.
    pub func_text: String,
}

fn rung_from_name(s: &str) -> Option<Rung> {
    Rung::ALL.iter().copied().find(|r| r.name() == s)
}

fn reason_from_name(s: &str) -> Option<ReasonCode> {
    const ALL: [ReasonCode; 11] = [
        ReasonCode::SolverTimeout,
        ReasonCode::SolverLimit,
        ReasonCode::NumericalTrouble,
        ReasonCode::Infeasible,
        ReasonCode::Panic,
        ReasonCode::ValidationFailed,
        ReasonCode::EquivalenceFailed,
        ReasonCode::StaticValidationFailed,
        ReasonCode::DeadlineExceeded,
        ReasonCode::RungUnavailable,
        ReasonCode::RungFailed,
    ];
    ALL.iter().copied().find(|r| r.name() == s)
}

fn width_from_bits(s: &str) -> Option<Width> {
    match s {
        "8" => Some(Width::B8),
        "16" => Some(Width::B16),
        "32" => Some(Width::B32),
        "64" => Some(Width::B64),
        _ => None,
    }
}

impl CacheEntry {
    /// Render the entry payload (everything after the `check` line).
    fn payload(&self) -> String {
        use std::fmt::Write;
        let mut p = String::new();
        writeln!(p, "rung {}", self.rung.name()).unwrap();
        if self.reasons.is_empty() {
            p.push_str("reasons -\n");
        } else {
            let names: Vec<&str> = self.reasons.iter().map(|r| r.name()).collect();
            writeln!(p, "reasons {}", names.join(",")).unwrap();
        }
        writeln!(
            p,
            "stats {} {} {} {} {} {}",
            self.stats.loads,
            self.stats.stores,
            self.stats.remats,
            self.stats.copies,
            self.stats.mem_operand_cycles,
            self.stats.code_bytes
        )
        .unwrap();
        writeln!(
            p,
            "model {} {} {} {}",
            self.num_constraints, self.num_vars, self.num_insts, self.solver_nodes
        )
        .unwrap();
        writeln!(p, "bytes {}", self.ip_bytes).unwrap();
        if self.slots.is_empty() {
            p.push_str("slots -\n");
        } else {
            let slots: Vec<String> = self
                .slots
                .iter()
                .map(|s| match s.home {
                    Some(g) => format!("{}:g{}", s.width.bits(), g),
                    None => format!("{}:-", s.width.bits()),
                })
                .collect();
            writeln!(p, "slots {}", slots.join(",")).unwrap();
        }
        writeln!(p, "func {}", self.func_text.lines().count()).unwrap();
        p.push_str(&self.func_text);
        if !self.func_text.ends_with('\n') {
            p.push('\n');
        }
        p
    }

    /// Serialize to the on-disk file format.
    pub fn serialize(&self) -> String {
        let payload = self.payload();
        format!("{MAGIC}\ncheck {:016x}\n{payload}", checksum(&payload))
    }

    /// Parse an on-disk entry, rejecting checksum mismatches and
    /// malformed fields. Returns `None` rather than an error: every
    /// failure mode is handled identically (treat as a miss).
    pub fn deserialize(text: &str) -> Option<CacheEntry> {
        let rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
        let (check_line, payload) = rest.split_once('\n')?;
        let stored: u64 = u64::from_str_radix(check_line.strip_prefix("check ")?, 16).ok()?;
        if checksum(payload) != stored {
            return None;
        }

        let mut lines = payload.lines();
        let rung = rung_from_name(lines.next()?.strip_prefix("rung ")?)?;
        let reasons_s = lines.next()?.strip_prefix("reasons ")?;
        let reasons = if reasons_s == "-" {
            Vec::new()
        } else {
            reasons_s
                .split(',')
                .map(reason_from_name)
                .collect::<Option<Vec<_>>>()?
        };
        let st: Vec<i64> = lines
            .next()?
            .strip_prefix("stats ")?
            .split(' ')
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<_>>>()?;
        let [loads, stores, remats, copies, mem_operand_cycles, code_bytes] = st[..] else {
            return None;
        };
        let md: Vec<u64> = lines
            .next()?
            .strip_prefix("model ")?
            .split(' ')
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<_>>>()?;
        let [num_constraints, num_vars, num_insts, solver_nodes] = md[..] else {
            return None;
        };
        let ip_bytes: u64 = lines.next()?.strip_prefix("bytes ")?.parse().ok()?;
        let slots_s = lines.next()?.strip_prefix("slots ")?;
        let slots = if slots_s == "-" {
            Vec::new()
        } else {
            slots_s
                .split(',')
                .map(|s| {
                    let (w, home) = s.split_once(':')?;
                    let width = width_from_bits(w)?;
                    let home = match home {
                        "-" => None,
                        g => Some(g.strip_prefix('g')?.parse().ok()?),
                    };
                    Some(SlotInfo { width, home })
                })
                .collect::<Option<Vec<_>>>()?
        };
        let nlines: usize = lines.next()?.strip_prefix("func ")?.parse().ok()?;
        let func_lines: Vec<&str> = lines.collect();
        if func_lines.len() != nlines {
            return None;
        }
        let mut func_text = func_lines.join("\n");
        func_text.push('\n');
        Some(CacheEntry {
            rung,
            reasons,
            stats: SpillStats {
                loads,
                stores,
                remats,
                copies,
                mem_operand_cycles,
                code_bytes,
            },
            num_constraints: num_constraints as usize,
            num_vars: num_vars as usize,
            num_insts: num_insts as usize,
            solver_nodes,
            ip_bytes,
            slots,
            func_text,
        })
    }

    /// Rebuild the allocated function from the stored text: parse,
    /// restore the slot table, and run structural verification. `None`
    /// means the entry cannot be trusted.
    pub fn realize(&self) -> Option<Function> {
        let mut func = parse_function(&self.func_text).ok()?;
        // The parser reconstructs slots (32-bit, no home) from the
        // references it sees; the stored table is authoritative. Fewer
        // stored slots than referenced ones means the entry is damaged.
        if self.slots.len() < func.slots().len() {
            return None;
        }
        for (i, &info) in self.slots.iter().enumerate() {
            if i < func.slots().len() {
                func.set_slot(SlotId(i as u32), info);
            } else {
                func.add_slot(info.width, info.home);
            }
        }
        if verify_allocated(&func).is_err() {
            return None;
        }
        Some(func)
    }
}

/// A verified allocation recovered from the cache.
#[derive(Clone, Debug)]
pub struct CachedAlloc {
    /// The allocated function, slot table restored, structurally
    /// verified.
    pub func: Function,
    /// The stored record.
    pub entry: CacheEntry,
}

/// The two-level (memory + optional disk) solution cache. Safe to share
/// across worker threads.
pub struct SolutionCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u64, CacheEntry>>,
    rejected: AtomicUsize,
}

impl SolutionCache {
    /// A cache persisting under `dir` (`None` = in-memory only, which
    /// still deduplicates identical bodies within one run). The directory
    /// is created eagerly; persistence degrades to memory-only if the
    /// filesystem refuses.
    pub fn new(dir: Option<PathBuf>) -> SolutionCache {
        let dir = dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        SolutionCache {
            dir,
            mem: Mutex::new(HashMap::new()),
            rejected: AtomicUsize::new(0),
        }
    }

    /// The file path backing `key`, when persistence is on.
    pub fn path_for(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.alloc")))
    }

    /// Look `key` up and *verify* the stored allocation before returning
    /// it. Corrupt or unverifiable entries are dropped and counted.
    pub fn lookup(&self, key: u64) -> Option<CachedAlloc> {
        let mem_hit = self.mem.lock().unwrap().get(&key).cloned();
        let (entry, from_disk) = match mem_hit {
            Some(e) => (e, false),
            None => {
                let path = self.path_for(key)?;
                let text = std::fs::read_to_string(path).ok()?;
                match CacheEntry::deserialize(&text) {
                    Some(e) => (e, true),
                    None => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
            }
        };
        match entry.realize() {
            Some(func) => {
                if from_disk {
                    self.mem.lock().unwrap().insert(key, entry.clone());
                }
                Some(CachedAlloc { func, entry })
            }
            None => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.mem.lock().unwrap().remove(&key);
                None
            }
        }
    }

    /// Store an entry in memory and (when configured) on disk. The disk
    /// write is atomic (temp file + rename) so a concurrent reader never
    /// sees a torn entry; write failures are ignored (the cache is an
    /// accelerator, not a store of record).
    pub fn store(&self, key: u64, entry: CacheEntry) {
        if let Some(path) = self.path_for(key) {
            let tmp = path.with_extension(format!("tmp{}", std::process::id()));
            if std::fs::write(&tmp, entry.serialize()).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        self.mem.lock().unwrap().insert(key, entry);
    }

    /// Drop `key` after a post-lookup check (e.g. static re-validation)
    /// rejected the realized allocation, and count the rejection.
    pub fn reject(&self, key: u64) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.mem.lock().unwrap().remove(&key);
        if let Some(path) = self.path_for(key) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Entries rejected by checksum, parse or verification failures.
    pub fn rejected(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_ir::{FunctionBuilder, Loc, PhysReg, Width};

    fn allocated_sample() -> Function {
        // A tiny already-"allocated" function: only physical registers.
        let mut b = FunctionBuilder::new("t");
        b.push(regalloc_ir::Inst::LoadImm {
            dst: Loc::Real(PhysReg(0)),
            imm: 5,
            width: Width::B32,
        });
        b.push(regalloc_ir::Inst::Ret {
            val: Some(regalloc_ir::Operand::Loc(Loc::Real(PhysReg(0)))),
        });
        b.finish()
    }

    fn entry_for(f: &Function) -> CacheEntry {
        CacheEntry {
            rung: Rung::IpOptimal,
            reasons: vec![ReasonCode::SolverTimeout],
            stats: SpillStats {
                loads: 1,
                stores: -2,
                remats: 3,
                copies: 0,
                mem_operand_cycles: 4,
                code_bytes: -5,
            },
            num_constraints: 42,
            num_vars: 17,
            num_insts: 2,
            solver_nodes: 9,
            ip_bytes: 11,
            slots: vec![
                SlotInfo {
                    width: Width::B8,
                    home: Some(1),
                },
                SlotInfo {
                    width: Width::B32,
                    home: None,
                },
            ],
            func_text: format!("{f}\n"),
        }
    }

    #[test]
    fn entry_round_trips_through_the_file_format() {
        let f = allocated_sample();
        let e = entry_for(&f);
        let parsed = CacheEntry::deserialize(&e.serialize()).expect("parses");
        assert_eq!(parsed, e);
        let realized = parsed.realize().expect("verifies");
        assert_eq!(realized.to_string(), f.to_string());
    }

    #[test]
    fn checksum_mismatch_rejects() {
        let e = entry_for(&allocated_sample());
        let text = e.serialize().replace("imm32 5", "imm32 6");
        assert!(CacheEntry::deserialize(&text).is_none());
    }

    #[test]
    fn valid_checksum_with_unallocated_body_fails_verification() {
        // Poisoning with a *well-formed* file: the checksum passes, but
        // the function still contains a symbolic register, so replay
        // verification must refuse it.
        let mut e = entry_for(&allocated_sample());
        e.func_text = e.func_text.replace("r0", "s0");
        let reparsed = CacheEntry::deserialize(&e.serialize()).expect("checksum is consistent");
        assert!(reparsed.realize().is_none());
    }

    #[test]
    fn disk_cache_round_trip_and_rejection_counting() {
        let dir = std::env::temp_dir().join(format!("regalloc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SolutionCache::new(Some(dir.clone()));
        let f = allocated_sample();
        let e = entry_for(&f);
        cache.store(7, e.clone());

        // A second cache over the same directory (fresh memory) hits disk.
        let cache2 = SolutionCache::new(Some(dir.clone()));
        let hit = cache2.lookup(7).expect("disk hit");
        assert_eq!(hit.entry, e);
        assert_eq!(hit.func.slot(SlotId(0)).width, Width::B8);

        // Corrupt the file; a fresh cache must reject and count it.
        let path = cache2.path_for(7).unwrap();
        let mangled = std::fs::read_to_string(&path).unwrap().replace('5', "6");
        std::fs::write(&path, mangled).unwrap();
        let cache3 = SolutionCache::new(Some(dir.clone()));
        assert!(cache3.lookup(7).is_none());
        assert_eq!(cache3.rejected(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_separates_inputs_but_not_names() {
        let f = allocated_sample();
        let cfg = SolverConfig::default();
        let k = cache_key(&f, "pentium", &cfg);
        assert_eq!(k, cache_key(&f, "pentium", &cfg));
        assert_ne!(k, cache_key(&f, "risc24", &cfg));
        let mut slow = cfg.clone();
        slow.time_limit = std::time::Duration::from_secs(1024);
        assert_ne!(k, cache_key(&f, "pentium", &slow));
    }
}
