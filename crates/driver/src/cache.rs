//! The content-addressed solution cache.
//!
//! Register allocation is a pure function of (function body, machine
//! model, solver configuration), and bench suites are regenerated from
//! seeds — so across runs the service sees the *same* allocation problems
//! over and over. The cache memoizes solved allocations under a canonical
//! content key so repeat runs are warm:
//!
//! * **Key** — FNV-1a over the function-body fingerprint
//!   ([`regalloc_ir::fingerprint`], stable across processes and
//!   print/parse round trips and independent of the function *name*),
//!   chained with the machine-model name and every solver-configuration
//!   field. Change any input and the key changes; rename a function and
//!   it does not.
//! * **Entry** — the full allocated function in canonical text, the spill
//!   slot table the text cannot carry (widths, §5.5 home coalescing), the
//!   spill statistics, model statistics and the degradation-ladder
//!   outcome; guarded by a checksum over the payload.
//! * **Persistence** — one file per entry under the cache directory
//!   (`results/cache/` for the bench harness), written atomically
//!   (temp file + rename) so concurrent workers never expose torn
//!   entries.
//!
//! **A hit is never trusted blindly.** The stored allocation is re-parsed
//! and replayed through [`regalloc_ir::verify_allocated`]; a checksum
//! mismatch, parse failure, malformed field or verification error rejects
//! the entry (counted in [`SolutionCache::rejected`]) and the driver
//! falls through to a fresh solve. A poisoned cache can therefore cost
//! time, never correctness.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use regalloc_core::{ReasonCode, Rung, SpillStats, SymbolicSolution, WarmStartKind};
use regalloc_ilp::SolverConfig;
use regalloc_ir::fingerprint::{fingerprint, fnv1a, FNV_OFFSET};
use regalloc_ir::{
    parse_function, verify_allocated, Function, ShapeVector, SlotId, SlotInfo, Width,
};
use regalloc_machine::TargetId;

/// First line of every cache file; bump the version to invalidate old
/// entries wholesale on a format change. v5 added the target identifier
/// to the key and a `target` payload line; v4 entries fail the magic
/// check and are treated as misses, never as errors.
pub const MAGIC: &str = "regalloc-cache v5";

/// Checksum guarding an entry's payload (everything after the `check`
/// line). Public so tooling and tests can produce well-formed entries.
pub fn checksum(payload: &str) -> u64 {
    fnv1a(FNV_OFFSET, payload.as_bytes())
}

/// The content key for allocating `f` on `target` under `solver`.
///
/// The target identifier is part of the key, so the same function
/// allocated for two targets occupies two distinct entries — a shared
/// cache directory can never serve one target's allocation to another.
///
/// `solver` must be the *configured* base configuration, never one
/// adjusted by the per-function [`BudgetGovernor`] — a governed deadline
/// in the key would fragment the cache across `--budget-secs` settings
/// and across positions in the run order. The deadline actually granted
/// is recorded inside the entry ([`CacheEntry::effective_deadline`])
/// where lookups can judge it instead.
///
/// [`BudgetGovernor`]: crate::schedule::BudgetGovernor
pub fn cache_key(f: &Function, target: TargetId, solver: &SolverConfig) -> u64 {
    let mut h = fingerprint(f);
    h = fnv1a(h, target.name().as_bytes());
    h = fnv1a(h, &solver.time_limit.as_nanos().to_le_bytes());
    h = fnv1a(h, &solver.lp_iter_limit.to_le_bytes());
    h = fnv1a(h, &solver.node_limit.to_le_bytes());
    h = fnv1a(h, &(solver.max_rows as u64).to_le_bytes());
    h
}

/// One cached allocation: everything the driver needs to reproduce a
/// solved function's result without re-running the solver.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// The target the allocation was produced for. Recorded in the
    /// payload as well as the key so a damaged or hand-moved file can
    /// never masquerade as another target's entry.
    pub target: TargetId,
    /// Degradation-ladder rung that produced the allocation.
    pub rung: Rung,
    /// Demotion reasons recorded on the way down.
    pub reasons: Vec<ReasonCode>,
    /// Spill accounting of the accepted allocation.
    pub stats: SpillStats,
    /// Constraints in the integer program.
    pub num_constraints: usize,
    /// Decision variables in the integer program.
    pub num_vars: usize,
    /// Intermediate instructions analysed.
    pub num_insts: usize,
    /// Branch-and-bound nodes the original solve used.
    pub solver_nodes: u64,
    /// Simplex iterations the original solve used (all relaxations,
    /// including pruned and abandoned nodes).
    pub lp_iters: u64,
    /// Encoded size of the allocation, in bytes.
    pub ip_bytes: u64,
    /// The per-function solve budget actually granted when this entry was
    /// produced. The cache key deliberately ignores the governed budget;
    /// this field lets a lookup recognise an entry that degraded under a
    /// smaller deadline than the one now available and re-solve instead.
    pub effective_deadline: Duration,
    /// Body fingerprint of the source function (donor identity: an exact
    /// fingerprint match means the donor solution lowers, not projects).
    pub fingerprint: u64,
    /// Shape vector of the source function, for nearest-neighbour donor
    /// queries on cache misses.
    pub shape: ShapeVector,
    /// Which warm start the accepted solve consumed.
    pub warm_start: WarmStartKind,
    /// The accepted allocation lifted into stable IR coordinates, when
    /// the IP rungs produced it — the donor payload for cross-function
    /// warm starts. Degraded rungs carry `None`.
    pub symbolic: Option<SymbolicSolution>,
    /// The audit-verified proof certificate in its text codec
    /// ([`regalloc_ilp::Certificate::to_text`]), present only for
    /// [`Rung::IpOptimal`] entries produced under auditing. Hits are
    /// re-audited against a freshly rebuilt model before the optimality
    /// claim is trusted; entries without one are treated as stale when
    /// auditing is on.
    pub cert: Option<String>,
    /// The spill-slot table (the canonical text carries only slot
    /// *references*).
    pub slots: Vec<SlotInfo>,
    /// The allocated function in canonical textual form.
    pub func_text: String,
}

fn width_from_bits(s: &str) -> Option<Width> {
    match s {
        "8" => Some(Width::B8),
        "16" => Some(Width::B16),
        "32" => Some(Width::B32),
        "64" => Some(Width::B64),
        _ => None,
    }
}

impl CacheEntry {
    /// Render the entry payload (everything after the `check` line).
    fn payload(&self) -> String {
        use std::fmt::Write;
        let mut p = String::new();
        writeln!(p, "target {}", self.target.name()).unwrap();
        writeln!(p, "rung {}", self.rung.name()).unwrap();
        if self.reasons.is_empty() {
            p.push_str("reasons -\n");
        } else {
            let names: Vec<&str> = self.reasons.iter().map(|r| r.name()).collect();
            writeln!(p, "reasons {}", names.join(",")).unwrap();
        }
        writeln!(
            p,
            "stats {} {} {} {} {} {}",
            self.stats.loads,
            self.stats.stores,
            self.stats.remats,
            self.stats.copies,
            self.stats.mem_operand_cycles,
            self.stats.code_bytes
        )
        .unwrap();
        writeln!(
            p,
            "model {} {} {} {} {}",
            self.num_constraints, self.num_vars, self.num_insts, self.solver_nodes, self.lp_iters
        )
        .unwrap();
        writeln!(p, "bytes {}", self.ip_bytes).unwrap();
        writeln!(p, "deadline {}", self.effective_deadline.as_nanos()).unwrap();
        writeln!(p, "fp {:016x}", self.fingerprint).unwrap();
        let shape: Vec<String> = self.shape.counts.iter().map(u64::to_string).collect();
        writeln!(p, "shape {}", shape.join(",")).unwrap();
        writeln!(p, "warm {}", self.warm_start.name()).unwrap();
        match &self.symbolic {
            None => p.push_str("sym -\n"),
            Some(s) => {
                let text = s.serialize();
                writeln!(p, "sym {}", text.lines().count()).unwrap();
                p.push_str(&text);
            }
        }
        match &self.cert {
            None => p.push_str("cert -\n"),
            Some(text) => {
                writeln!(p, "cert {}", text.lines().count()).unwrap();
                p.push_str(text);
                if !text.ends_with('\n') {
                    p.push('\n');
                }
            }
        }
        if self.slots.is_empty() {
            p.push_str("slots -\n");
        } else {
            let slots: Vec<String> = self
                .slots
                .iter()
                .map(|s| match s.home {
                    Some(g) => format!("{}:g{}", s.width.bits(), g),
                    None => format!("{}:-", s.width.bits()),
                })
                .collect();
            writeln!(p, "slots {}", slots.join(",")).unwrap();
        }
        writeln!(p, "func {}", self.func_text.lines().count()).unwrap();
        p.push_str(&self.func_text);
        if !self.func_text.ends_with('\n') {
            p.push('\n');
        }
        p
    }

    /// Serialize to the on-disk file format.
    pub fn serialize(&self) -> String {
        let payload = self.payload();
        format!("{MAGIC}\ncheck {:016x}\n{payload}", checksum(&payload))
    }

    /// Parse an on-disk entry, rejecting checksum mismatches and
    /// malformed fields. Returns `None` rather than an error: every
    /// failure mode is handled identically (treat as a miss).
    pub fn deserialize(text: &str) -> Option<CacheEntry> {
        let rest = text.strip_prefix(MAGIC)?.strip_prefix('\n')?;
        let (check_line, payload) = rest.split_once('\n')?;
        let stored: u64 = u64::from_str_radix(check_line.strip_prefix("check ")?, 16).ok()?;
        if checksum(payload) != stored {
            return None;
        }

        let mut lines = payload.lines();
        let target = TargetId::parse(lines.next()?.strip_prefix("target ")?)?;
        let rung = Rung::from_name(lines.next()?.strip_prefix("rung ")?)?;
        let reasons_s = lines.next()?.strip_prefix("reasons ")?;
        let reasons = if reasons_s == "-" {
            Vec::new()
        } else {
            reasons_s
                .split(',')
                .map(ReasonCode::from_name)
                .collect::<Option<Vec<_>>>()?
        };
        let st: Vec<i64> = lines
            .next()?
            .strip_prefix("stats ")?
            .split(' ')
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<_>>>()?;
        let [loads, stores, remats, copies, mem_operand_cycles, code_bytes] = st[..] else {
            return None;
        };
        let md: Vec<u64> = lines
            .next()?
            .strip_prefix("model ")?
            .split(' ')
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<_>>>()?;
        let [num_constraints, num_vars, num_insts, solver_nodes, lp_iters] = md[..] else {
            return None;
        };
        let ip_bytes: u64 = lines.next()?.strip_prefix("bytes ")?.parse().ok()?;
        let deadline_nanos: u128 = lines.next()?.strip_prefix("deadline ")?.parse().ok()?;
        let effective_deadline = Duration::from_nanos(u64::try_from(deadline_nanos).ok()?);
        let fp = u64::from_str_radix(lines.next()?.strip_prefix("fp ")?, 16).ok()?;
        let counts: Vec<u64> = lines
            .next()?
            .strip_prefix("shape ")?
            .split(',')
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<_>>>()?;
        let shape = ShapeVector {
            counts: counts.try_into().ok()?,
        };
        let warm_start = WarmStartKind::from_name(lines.next()?.strip_prefix("warm ")?)?;
        let sym_s = lines.next()?.strip_prefix("sym ")?;
        let symbolic = if sym_s == "-" {
            None
        } else {
            let n: usize = sym_s.parse().ok()?;
            let mut text = String::new();
            for _ in 0..n {
                text.push_str(lines.next()?);
                text.push('\n');
            }
            Some(SymbolicSolution::deserialize(&text)?)
        };
        let cert_s = lines.next()?.strip_prefix("cert ")?;
        let cert = if cert_s == "-" {
            None
        } else {
            let n: usize = cert_s.parse().ok()?;
            let mut text = String::new();
            for _ in 0..n {
                text.push_str(lines.next()?);
                text.push('\n');
            }
            // The embedded certificate must itself parse; a cache entry
            // carrying syntactic garbage is damaged, not merely unproven.
            regalloc_ilp::Certificate::from_text(&text)?;
            Some(text)
        };
        let slots_s = lines.next()?.strip_prefix("slots ")?;
        let slots = if slots_s == "-" {
            Vec::new()
        } else {
            slots_s
                .split(',')
                .map(|s| {
                    let (w, home) = s.split_once(':')?;
                    let width = width_from_bits(w)?;
                    let home = match home {
                        "-" => None,
                        g => Some(g.strip_prefix('g')?.parse().ok()?),
                    };
                    Some(SlotInfo { width, home })
                })
                .collect::<Option<Vec<_>>>()?
        };
        let nlines: usize = lines.next()?.strip_prefix("func ")?.parse().ok()?;
        let func_lines: Vec<&str> = lines.collect();
        if func_lines.len() != nlines {
            return None;
        }
        let mut func_text = func_lines.join("\n");
        func_text.push('\n');
        Some(CacheEntry {
            target,
            rung,
            reasons,
            stats: SpillStats {
                loads,
                stores,
                remats,
                copies,
                mem_operand_cycles,
                code_bytes,
            },
            num_constraints: num_constraints as usize,
            num_vars: num_vars as usize,
            num_insts: num_insts as usize,
            solver_nodes,
            lp_iters,
            ip_bytes,
            effective_deadline,
            fingerprint: fp,
            shape,
            warm_start,
            symbolic,
            cert,
            slots,
            func_text,
        })
    }

    /// Rebuild the allocated function from the stored text: parse,
    /// restore the slot table, and run structural verification. `None`
    /// means the entry cannot be trusted.
    pub fn realize(&self) -> Option<Function> {
        let mut func = parse_function(&self.func_text).ok()?;
        // The parser reconstructs slots (32-bit, no home) from the
        // references it sees; the stored table is authoritative. Fewer
        // stored slots than referenced ones means the entry is damaged.
        if self.slots.len() < func.slots().len() {
            return None;
        }
        for (i, &info) in self.slots.iter().enumerate() {
            if i < func.slots().len() {
                func.set_slot(SlotId(i as u32), info);
            } else {
                func.add_slot(info.width, info.home);
            }
        }
        if verify_allocated(&func).is_err() {
            return None;
        }
        Some(func)
    }
}

/// A verified allocation recovered from the cache.
#[derive(Clone, Debug)]
pub struct CachedAlloc {
    /// The allocated function, slot table restored, structurally
    /// verified.
    pub func: Function,
    /// The stored record.
    pub entry: CacheEntry,
}

/// One donor candidate for cross-function warm starts: a solved entry's
/// symbolic solution plus the coordinates used to match it against new
/// functions.
#[derive(Clone, Debug)]
pub struct DonorEntry {
    /// Body fingerprint of the donor's source function.
    pub fingerprint: u64,
    /// Shape vector of the donor's source function.
    pub shape: ShapeVector,
    /// The donor's allocation in stable IR coordinates.
    pub solution: SymbolicSolution,
}

/// Retention limits for a long-lived cache. `None` fields are unlimited
/// (the batch driver's historical behavior); the daemon and the CLI's
/// `--cache-max-entries`/`--cache-max-bytes` flags bound growth with
/// least-recently-used eviction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum live entries (memory and disk together).
    pub max_entries: Option<usize>,
    /// Maximum total serialized bytes across live entries.
    pub max_bytes: Option<u64>,
}

impl CacheLimits {
    /// No bounds at all.
    pub fn unlimited() -> CacheLimits {
        CacheLimits::default()
    }

    fn is_unlimited(&self) -> bool {
        self.max_entries.is_none() && self.max_bytes.is_none()
    }
}

/// Recency/size bookkeeping per live key.
#[derive(Default)]
struct LruMeta {
    clock: u64,
    /// key -> (last-use stamp, serialized bytes).
    entries: HashMap<u64, (u64, u64)>,
}

/// RAII pin: while alive, the pinned key is exempt from LRU eviction.
/// The driver pins an entry across lookup + static revalidation so the
/// allocation being verified can never be yanked from under the verifier.
pub struct CachePin<'a> {
    cache: &'a SolutionCache,
    key: u64,
}

impl Drop for CachePin<'_> {
    fn drop(&mut self) {
        let mut pins = self.cache.pins.lock().unwrap();
        if let Some(n) = pins.get_mut(&self.key) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&self.key);
            }
        }
    }
}

/// The two-level (memory + optional disk) solution cache. Safe to share
/// across worker threads.
pub struct SolutionCache {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u64, CacheEntry>>,
    rejected: AtomicUsize,
    evicted: AtomicUsize,
    limits: CacheLimits,
    lru: Mutex<LruMeta>,
    pins: Mutex<HashMap<u64, usize>>,
}

impl SolutionCache {
    /// A cache persisting under `dir` (`None` = in-memory only, which
    /// still deduplicates identical bodies within one run). The directory
    /// is created eagerly; persistence degrades to memory-only if the
    /// filesystem refuses. No retention limits — see
    /// [`SolutionCache::with_limits`].
    pub fn new(dir: Option<PathBuf>) -> SolutionCache {
        SolutionCache::with_limits(dir, CacheLimits::unlimited())
    }

    /// A cache with LRU retention limits. Pre-existing entries under
    /// `dir` are adopted into the accounting (stamped in sorted-filename
    /// order, i.e. treated as equally old) and evicted immediately if the
    /// directory already exceeds the limits — the bound holds *across*
    /// runs, not just within one.
    pub fn with_limits(dir: Option<PathBuf>, limits: CacheLimits) -> SolutionCache {
        let dir = dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        let cache = SolutionCache {
            dir,
            mem: Mutex::new(HashMap::new()),
            rejected: AtomicUsize::new(0),
            evicted: AtomicUsize::new(0),
            limits,
            lru: Mutex::new(LruMeta::default()),
            pins: Mutex::new(HashMap::new()),
        };
        if !cache.limits.is_unlimited() {
            cache.adopt_disk_entries();
            cache.enforce_limits();
        }
        cache
    }

    /// Record every `*.alloc` file already on disk in the LRU accounting.
    fn adopt_disk_entries(&self) {
        let Some(dir) = &self.dir else { return };
        let Ok(rd) = std::fs::read_dir(dir) else {
            return;
        };
        let mut found: Vec<(u64, u64)> = rd
            .flatten()
            .filter_map(|d| {
                let path = d.path();
                let stem = path.file_stem()?.to_str()?;
                if path.extension()? != "alloc" {
                    return None;
                }
                let key = u64::from_str_radix(stem, 16).ok()?;
                let bytes = d.metadata().ok()?.len();
                Some((key, bytes))
            })
            .collect();
        found.sort_unstable();
        let mut lru = self.lru.lock().unwrap();
        for (key, bytes) in found {
            lru.clock += 1;
            let stamp = lru.clock;
            lru.entries.insert(key, (stamp, bytes));
        }
    }

    /// The file path backing `key`, when persistence is on.
    pub fn path_for(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.alloc")))
    }

    /// Pin `key` against LRU eviction for the guard's lifetime.
    pub fn pin(&self, key: u64) -> CachePin<'_> {
        *self.pins.lock().unwrap().entry(key).or_insert(0) += 1;
        CachePin { cache: self, key }
    }

    /// Bump `key`'s recency stamp (and record its size).
    fn touch(&self, key: u64, bytes: u64) {
        if self.limits.is_unlimited() {
            return;
        }
        let mut lru = self.lru.lock().unwrap();
        lru.clock += 1;
        let stamp = lru.clock;
        lru.entries.insert(key, (stamp, bytes));
    }

    /// Forget `key` in the LRU accounting.
    fn forget(&self, key: u64) {
        if !self.limits.is_unlimited() {
            self.lru.lock().unwrap().entries.remove(&key);
        }
    }

    /// Evict least-recently-used unpinned entries until the cache fits
    /// its limits again. A single oversized entry that is pinned simply
    /// waits: eviction retries on the next store.
    fn enforce_limits(&self) {
        if self.limits.is_unlimited() {
            return;
        }
        loop {
            let victim = {
                let lru = self.lru.lock().unwrap();
                let entries = lru.entries.len();
                let bytes: u64 = lru.entries.values().map(|(_, b)| *b).sum();
                let over_entries = self.limits.max_entries.is_some_and(|m| entries > m);
                let over_bytes = self.limits.max_bytes.is_some_and(|m| bytes > m);
                if !over_entries && !over_bytes {
                    return;
                }
                let pins = self.pins.lock().unwrap();
                let mut oldest: Option<(u64, u64)> = None; // (stamp, key)
                for (&k, &(stamp, _)) in lru.entries.iter() {
                    if pins.contains_key(&k) {
                        continue;
                    }
                    if oldest.is_none_or(|(s, _)| stamp < s) {
                        oldest = Some((stamp, k));
                    }
                }
                oldest.map(|(_, k)| k)
            };
            let Some(key) = victim else {
                // Everything over the limit is pinned; give up for now.
                return;
            };
            self.forget(key);
            self.mem.lock().unwrap().remove(&key);
            if let Some(path) = self.path_for(key) {
                let _ = std::fs::remove_file(path);
            }
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Look `key` up and *verify* the stored allocation before returning
    /// it. Corrupt, truncated, unreadable or unverifiable entries are
    /// dropped and counted — a zero-byte or mid-write-truncated file is
    /// treated exactly like a poisoned entry (reject and re-solve), never
    /// a panic.
    pub fn lookup(&self, key: u64) -> Option<CachedAlloc> {
        let mem_hit = self.mem.lock().unwrap().get(&key).cloned();
        let (entry, from_disk) = match mem_hit {
            Some(e) => (e, false),
            None => {
                let path = self.path_for(key)?;
                let text = match std::fs::read_to_string(&path) {
                    Ok(text) => text,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
                    Err(_) => {
                        // The file exists but cannot be read (permissions,
                        // non-UTF-8 garbage): poisoned, not a miss.
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = std::fs::remove_file(&path);
                        self.forget(key);
                        return None;
                    }
                };
                match CacheEntry::deserialize(&text) {
                    Some(e) => (e, true),
                    None => {
                        self.rejected.fetch_add(1, Ordering::Relaxed);
                        let _ = std::fs::remove_file(&path);
                        self.forget(key);
                        return None;
                    }
                }
            }
        };
        match entry.realize() {
            Some(func) => {
                let bytes = entry.serialize().len() as u64;
                if from_disk {
                    self.mem.lock().unwrap().insert(key, entry.clone());
                }
                self.touch(key, bytes);
                Some(CachedAlloc { func, entry })
            }
            None => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.mem.lock().unwrap().remove(&key);
                self.forget(key);
                None
            }
        }
    }

    /// Store an entry in memory and (when configured) on disk, then
    /// enforce the retention limits. The disk write is atomic (temp
    /// file then rename) so a concurrent reader never sees a torn entry; write
    /// failures are ignored (the cache is an accelerator, not a store of
    /// record).
    pub fn store(&self, key: u64, entry: CacheEntry) {
        let serialized = entry.serialize();
        if let Some(path) = self.path_for(key) {
            let tmp = path.with_extension(format!("tmp{}", std::process::id()));
            if std::fs::write(&tmp, &serialized).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        self.mem.lock().unwrap().insert(key, entry);
        self.touch(key, serialized.len() as u64);
        self.enforce_limits();
    }

    /// Drop `key` after a post-lookup check (e.g. static re-validation)
    /// rejected the realized allocation, and count the rejection.
    pub fn reject(&self, key: u64) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.mem.lock().unwrap().remove(&key);
        self.forget(key);
        if let Some(path) = self.path_for(key) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Entries rejected by checksum, parse or verification failures.
    pub fn rejected(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU retention limits.
    pub fn evicted(&self) -> usize {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Live entries in the LRU accounting (0 when unlimited — unlimited
    /// caches do no bookkeeping).
    pub fn tracked_entries(&self) -> usize {
        self.lru.lock().unwrap().entries.len()
    }

    /// Snapshot every donor-eligible entry: IP-solved rungs carrying a
    /// symbolic solution, from memory and (when persisting) disk. The
    /// result is fingerprint-sorted and deduplicated, so the snapshot is
    /// deterministic regardless of map iteration or directory order —
    /// the driver freezes one snapshot per run to keep warm-start
    /// selection independent of worker scheduling.
    pub fn donor_snapshot(&self) -> Vec<DonorEntry> {
        let mut donors: Vec<DonorEntry> = Vec::new();
        let mut push = |e: &CacheEntry| {
            if matches!(e.rung, Rung::IpOptimal | Rung::IpIncumbent) {
                if let Some(sol) = &e.symbolic {
                    donors.push(DonorEntry {
                        fingerprint: e.fingerprint,
                        shape: e.shape,
                        solution: sol.clone(),
                    });
                }
            }
        };
        for e in self.mem.lock().unwrap().values() {
            push(e);
        }
        if let Some(dir) = &self.dir {
            if let Ok(rd) = std::fs::read_dir(dir) {
                let mut paths: Vec<PathBuf> = rd
                    .flatten()
                    .map(|d| d.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "alloc"))
                    .collect();
                paths.sort();
                for p in paths {
                    if let Ok(text) = std::fs::read_to_string(&p) {
                        if let Some(e) = CacheEntry::deserialize(&text) {
                            push(&e);
                        }
                    }
                }
            }
        }
        donors.sort_by(|a, b| {
            a.fingerprint
                .cmp(&b.fingerprint)
                .then_with(|| a.solution.serialize().cmp(&b.solution.serialize()))
        });
        donors.dedup_by_key(|d| d.fingerprint);
        donors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regalloc_core::{EventDecision, EventKey};
    use regalloc_ir::{FunctionBuilder, Loc, PhysReg, Width};

    fn allocated_sample() -> Function {
        // A tiny already-"allocated" function: only physical registers.
        let mut b = FunctionBuilder::new("t");
        b.push(regalloc_ir::Inst::LoadImm {
            dst: Loc::Real(PhysReg(0)),
            imm: 5,
            width: Width::B32,
        });
        b.push(regalloc_ir::Inst::Ret {
            val: Some(regalloc_ir::Operand::Loc(Loc::Real(PhysReg(0)))),
        });
        b.finish()
    }

    fn entry_for(f: &Function) -> CacheEntry {
        CacheEntry {
            target: TargetId::X86Pentium,
            rung: Rung::IpOptimal,
            reasons: vec![ReasonCode::SolverTimeout],
            stats: SpillStats {
                loads: 1,
                stores: -2,
                remats: 3,
                copies: 0,
                mem_operand_cycles: 4,
                code_bytes: -5,
            },
            num_constraints: 42,
            num_vars: 17,
            num_insts: 2,
            solver_nodes: 9,
            lp_iters: 31,
            ip_bytes: 11,
            effective_deadline: Duration::from_millis(250),
            fingerprint: fingerprint(f),
            shape: ShapeVector {
                counts: [1, 2, 0, 0, 2, 0, 0, 0],
            },
            warm_start: WarmStartKind::Projected,
            cert: None,
            symbolic: Some(SymbolicSolution::from_decisions(vec![(
                EventKey {
                    sym: 0,
                    block: 0,
                    inst: Some(0),
                },
                EventDecision {
                    def: Some(PhysReg(0)),
                    out_regs: vec![PhysReg(0)],
                    ..EventDecision::default()
                },
            )])),
            slots: vec![
                SlotInfo {
                    width: Width::B8,
                    home: Some(1),
                },
                SlotInfo {
                    width: Width::B32,
                    home: None,
                },
            ],
            func_text: format!("{f}\n"),
        }
    }

    #[test]
    fn entry_round_trips_through_the_file_format() {
        let f = allocated_sample();
        let e = entry_for(&f);
        let parsed = CacheEntry::deserialize(&e.serialize()).expect("parses");
        assert_eq!(parsed, e);
        let realized = parsed.realize().expect("verifies");
        assert_eq!(realized.to_string(), f.to_string());
    }

    #[test]
    fn checksum_mismatch_rejects() {
        let e = entry_for(&allocated_sample());
        let text = e.serialize().replace("imm32 5", "imm32 6");
        assert!(CacheEntry::deserialize(&text).is_none());
    }

    #[test]
    fn valid_checksum_with_unallocated_body_fails_verification() {
        // Poisoning with a *well-formed* file: the checksum passes, but
        // the function still contains a symbolic register, so replay
        // verification must refuse it.
        let mut e = entry_for(&allocated_sample());
        e.func_text = e.func_text.replace("r0", "s0");
        let reparsed = CacheEntry::deserialize(&e.serialize()).expect("checksum is consistent");
        assert!(reparsed.realize().is_none());
    }

    #[test]
    fn disk_cache_round_trip_and_rejection_counting() {
        let dir = std::env::temp_dir().join(format!("regalloc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SolutionCache::new(Some(dir.clone()));
        let f = allocated_sample();
        let e = entry_for(&f);
        cache.store(7, e.clone());

        // A second cache over the same directory (fresh memory) hits disk.
        let cache2 = SolutionCache::new(Some(dir.clone()));
        let hit = cache2.lookup(7).expect("disk hit");
        assert_eq!(hit.entry, e);
        assert_eq!(hit.func.slot(SlotId(0)).width, Width::B8);

        // Corrupt the file; a fresh cache must reject and count it.
        let path = cache2.path_for(7).unwrap();
        let mangled = std::fs::read_to_string(&path).unwrap().replace('5', "6");
        std::fs::write(&path, mangled).unwrap();
        let cache3 = SolutionCache::new(Some(dir.clone()));
        assert!(cache3.lookup(7).is_none());
        assert_eq!(cache3.rejected(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_without_symbolic_round_trips() {
        let mut e = entry_for(&allocated_sample());
        e.symbolic = None;
        e.warm_start = WarmStartKind::None;
        let parsed = CacheEntry::deserialize(&e.serialize()).expect("parses");
        assert_eq!(parsed, e);
    }

    #[test]
    fn entry_with_certificate_round_trips() {
        use regalloc_ilp::{Certificate, Claim, NodeCert, Step};
        let mut e = entry_for(&allocated_sample());
        let cert = Certificate {
            incumbent: Some((vec![true, false], -2.0)),
            leaves: vec![NodeCert {
                steps: vec![Step::Decision {
                    var: 0,
                    value: true,
                }],
                claim: Claim::Bound {
                    duals: vec![0.0, -1.0],
                },
            }],
        };
        e.cert = Some(cert.to_text());
        let parsed = CacheEntry::deserialize(&e.serialize()).expect("parses");
        assert_eq!(parsed, e);
        let back = Certificate::from_text(parsed.cert.as_deref().unwrap()).expect("cert parses");
        assert_eq!(back, cert);
    }

    #[test]
    fn garbage_certificate_text_rejects_the_entry() {
        let mut e = entry_for(&allocated_sample());
        e.cert = Some("inc zzz not a certificate\n".to_string());
        // The checksum covers the garbage, so the damage is caught by the
        // embedded certificate parse, not the checksum.
        assert!(CacheEntry::deserialize(&e.serialize()).is_none());
    }

    #[test]
    fn donor_snapshot_filters_sorts_and_dedupes() {
        let dir = std::env::temp_dir().join(format!("regalloc-donor-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SolutionCache::new(Some(dir.clone()));
        let f = allocated_sample();
        let mut a = entry_for(&f);
        a.fingerprint = 3;
        let mut b = entry_for(&f);
        b.fingerprint = 1;
        b.rung = Rung::IpIncumbent;
        let mut degraded = entry_for(&f);
        degraded.fingerprint = 2;
        degraded.rung = Rung::Coloring;
        let mut bare = entry_for(&f);
        bare.fingerprint = 4;
        bare.symbolic = None;
        cache.store(10, a);
        cache.store(11, b);
        cache.store(12, degraded);
        cache.store(13, bare);

        // Memory and disk both hold every entry; the snapshot filters to
        // solved-with-symbolic, sorts by fingerprint and dedupes.
        let fps: Vec<u64> = cache
            .donor_snapshot()
            .iter()
            .map(|d| d.fingerprint)
            .collect();
        assert_eq!(fps, vec![1, 3]);

        // A fresh cache over the same directory reads the same donors
        // back from disk alone.
        let cache2 = SolutionCache::new(Some(dir.clone()));
        let fps2: Vec<u64> = cache2
            .donor_snapshot()
            .iter()
            .map(|d| d.fingerprint)
            .collect();
        assert_eq!(fps2, vec![1, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_bounds_entries_within_and_across_runs() {
        let dir = std::env::temp_dir().join(format!("regalloc-lru-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let f = allocated_sample();
        let limits = CacheLimits {
            max_entries: Some(2),
            max_bytes: None,
        };
        let cache = SolutionCache::with_limits(Some(dir.clone()), limits);
        cache.store(1, entry_for(&f));
        cache.store(2, entry_for(&f));
        cache.store(3, entry_for(&f));
        assert_eq!(cache.evicted(), 1);
        assert_eq!(cache.tracked_entries(), 2);
        // Key 1 was least recently used: gone from memory and disk.
        assert!(cache.lookup(1).is_none());
        assert!(!cache.path_for(1).unwrap().exists());
        assert!(cache.lookup(2).is_some() && cache.lookup(3).is_some());
        // A lookup refreshes recency: touch 2, store 4, and 3 is the victim.
        assert!(cache.lookup(2).is_some());
        cache.store(4, entry_for(&f));
        assert!(cache.lookup(3).is_none());
        assert!(cache.lookup(2).is_some());

        // A fresh cache over the same over-full directory (simulating a
        // tighter limit configured on restart) prunes on startup.
        let strict = SolutionCache::with_limits(
            Some(dir.clone()),
            CacheLimits {
                max_entries: Some(1),
                max_bytes: None,
            },
        );
        assert_eq!(strict.tracked_entries(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_limit_evicts_oldest_entries() {
        let f = allocated_sample();
        let one_entry = entry_for(&f).serialize().len() as u64;
        let cache = SolutionCache::with_limits(
            None,
            CacheLimits {
                max_entries: None,
                max_bytes: Some(one_entry * 2),
            },
        );
        cache.store(1, entry_for(&f));
        cache.store(2, entry_for(&f));
        assert_eq!(cache.evicted(), 0);
        cache.store(3, entry_for(&f));
        assert_eq!(cache.evicted(), 1);
        assert!(cache.lookup(1).is_none());
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn eviction_never_evicts_a_pinned_entry() {
        let f = allocated_sample();
        let cache = SolutionCache::with_limits(
            None,
            CacheLimits {
                max_entries: Some(1),
                max_bytes: None,
            },
        );
        cache.store(1, entry_for(&f));
        // Pin key 1 as if it were mid-verification: storing key 2 must
        // evict key 2 itself (the only unpinned entry), never key 1.
        let pin = cache.pin(1);
        cache.store(2, entry_for(&f));
        assert!(cache.lookup(1).is_some(), "pinned entry survived");
        assert!(cache.lookup(2).is_none(), "unpinned newcomer was evicted");
        drop(pin);
        // Unpinned now: the next store evicts key 1 normally.
        cache.store(3, entry_for(&f));
        assert!(cache.lookup(1).is_none());
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn truncated_and_zero_byte_entries_reject_without_panicking() {
        let dir = std::env::temp_dir().join(format!("regalloc-trunc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let f = allocated_sample();
        let full = entry_for(&f).serialize();

        // A mid-write truncation at every eighth boundary plus the
        // zero-byte file: all must be clean rejections (miss + count).
        let mut cuts: Vec<usize> = (0..8).map(|i| full.len() * i / 8).collect();
        cuts.push(full.len() - 1);
        for (i, cut) in cuts.into_iter().enumerate() {
            let cache = SolutionCache::new(Some(dir.clone()));
            let path = cache.path_for(7).unwrap();
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                cache.lookup(7).is_none(),
                "truncation at {cut} bytes must miss"
            );
            assert_eq!(cache.rejected(), 1, "cut #{i} counted as a rejection");
            assert!(!path.exists(), "poisoned file removed");
            // The rejection leaves the slot clean: a store + lookup works.
            cache.store(7, entry_for(&f));
            assert!(cache.lookup(7).is_some());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn key_separates_inputs_but_not_names() {
        let f = allocated_sample();
        let cfg = SolverConfig::default();
        let k = cache_key(&f, TargetId::X86Pentium, &cfg);
        assert_eq!(k, cache_key(&f, TargetId::X86Pentium, &cfg));
        assert_ne!(k, cache_key(&f, TargetId::Risc24, &cfg));
        assert_ne!(k, cache_key(&f, TargetId::Mcu, &cfg));
        let mut slow = cfg.clone();
        slow.time_limit = std::time::Duration::from_secs(1024);
        assert_ne!(k, cache_key(&f, TargetId::X86Pentium, &slow));
    }
}
