//! `regalloc-driver` — the batch allocation service.
//!
//! The paper allocates each SPECint92 function independently under a
//! per-function solver budget (1024 s, Table 2): an embarrassingly
//! parallel workload that the bench harness nevertheless ran one function
//! at a time on one core. This crate turns the per-function
//! [`RobustAllocator`] pipeline into a suite-level service:
//!
//! * a hand-rolled **work-stealing thread pool** ([`pool`]) shards the
//!   suite across `jobs` workers;
//! * a **content-addressed solution cache** ([`cache`]) memoizes
//!   allocations under a canonical hash of function body, machine model
//!   and solver configuration, persisted on disk so repeat runs are
//!   warm — every hit is re-verified through
//!   [`regalloc_ir::verify_allocated`] before being trusted;
//! * **deadline-aware scheduling** ([`schedule`]) orders the queue
//!   cheapest-model-first and divides an optional global wall-clock
//!   budget into shrinking per-function grants, mirroring how the
//!   paper's 1024-second limit bounded tail functions — exhausted budget
//!   demotes tail functions down the degradation ladder instead of
//!   hanging the run;
//! * **cross-function warm starts** — on a cache miss the driver finds
//!   the nearest previously-solved function by shape vector, projects its
//!   stored symbolic solution ([`regalloc_core::SymbolicSolution`]) onto
//!   the new function's model and hands the feasibility-checked result to
//!   the solver as an extra incumbent. A donor can only prune the
//!   branch-and-bound search: accepted allocations are identical with
//!   warm starts on or off whenever the solver reaches optimality.
//!
//! # Determinism
//!
//! [`run_suite`] returns results in suite order regardless of worker
//! count or completion order. Allocations, statistics and reports are
//! byte-identical for any `jobs` value provided the wall-clock limits do
//! not bind (the solver's node and iteration limits, which normally
//! terminate a solve, are deterministic). Only timing fields
//! ([`FunctionResult::task_time`], [`DriverStats`] clocks) vary run to
//! run. On a *cold* run the cache-hit accounting may differ across
//! worker counts when a suite contains identically-bodied functions
//! (with `jobs = 1` the second body hits the first's fresh entry; with
//! racing workers both may solve) — the allocations themselves are still
//! identical, which is what the guarantee covers.
//!
//! # Example
//!
//! ```
//! use regalloc_driver::{run_suite, CacheMode, DriverConfig};
//! use regalloc_workloads::{Benchmark, Suite};
//!
//! let suite = Suite::generate_scaled(Benchmark::Compress, 1998, 0.1);
//! let cfg = DriverConfig {
//!     jobs: 2,
//!     cache: CacheMode::Memory,
//!     ..DriverConfig::default()
//! };
//! let out = run_suite(&suite.functions, &cfg);
//! assert_eq!(out.results.len(), suite.functions.len());
//! assert!(out.results.iter().all(|r| !r.attempted || r.func.is_some()));
//! ```

pub mod cache;
pub mod observatory;
pub mod pool;
pub mod schedule;
pub mod service;

use std::path::PathBuf;
use std::time::{Duration, Instant};

use regalloc_core::{ReasonCode, Rung, SpillStats, WarmStartKind};
use regalloc_ilp::{SolverConfig, SolverHealth};
use regalloc_ir::Function;
use regalloc_machine::TargetId;
use regalloc_obs::{jsonl_events, jsonl_timings, FunctionTrace, Metrics, Phase};

use cache::CacheLimits;
use schedule::BudgetGovernor;
pub use service::{parse_functions, AllocationService, BudgetSource, FixedGrant, RequestOptions};

/// Where solved allocations are memoized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// No cache at all (every function is solved fresh).
    Off,
    /// In-memory only: deduplicates identical bodies within one run.
    Memory,
    /// Memory plus one file per entry under the given directory, so
    /// repeat runs are warm.
    Disk(PathBuf),
}

/// Configuration for a batch run.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// The target machine every function is allocated for. Resolved to a
    /// concrete model through `regalloc_core::targets::machine_for`; part
    /// of the solution-cache key, so one cache directory serves any mix
    /// of targets without cross-contamination.
    pub target: TargetId,
    /// Worker threads (0 is treated as 1).
    pub jobs: usize,
    /// IP solver configuration, applied to every function (part of the
    /// cache key).
    pub solver: SolverConfig,
    /// Per-function wall-clock ceiling across all ladder rungs (the
    /// paper's 1024-second analogue).
    pub function_budget: Duration,
    /// Optional wall-clock budget for the whole suite; per-function
    /// grants shrink as it drains. `None` = unlimited.
    pub global_budget: Option<Duration>,
    /// Solution-cache placement.
    pub cache: CacheMode,
    /// Solution-cache capacity bounds (LRU eviction; unlimited by
    /// default). A long-lived daemon sets these so the cache cannot grow
    /// without bound.
    pub cache_limits: CacheLimits,
    /// Interpreter-equivalence runs per accepted candidate (0 disables;
    /// structural verification always runs).
    pub equiv_runs: usize,
    /// Seed for the equivalence argument vectors.
    pub equiv_seed: u64,
    /// Also run the graph-coloring baseline on every function and attach
    /// the outcome (used by the paper-table harness).
    pub compare_baseline: bool,
    /// Run the `regalloc-lint` quality lints over every accepted
    /// allocation and attach the diagnostics to the result.
    pub lint: bool,
    /// Statically re-validate cache hits with the dataflow translation
    /// validator before trusting them; failing entries are evicted and
    /// the function is solved fresh.
    pub revalidate_cache: bool,
    /// Seed cache misses with the nearest cached symbolic solution
    /// (projected onto the new function's model) as a second solver
    /// incumbent. Pure acceleration: projections are feasibility-checked
    /// before seeding and only ever prune the search.
    pub warm_starts: bool,
    /// Maximum shape-vector distance (relative L1, in `[0, 1]`) at which
    /// a cached solution is considered a warm-start donor.
    pub warm_start_distance: f64,
    /// Audit every optimality claim with the exact-rational certificate
    /// checker (`regalloc-audit`): fresh solves run under
    /// [`regalloc_core::RobustAllocator::with_audit`], and cache hits at
    /// the ip-optimal rung are only trusted after their persisted
    /// certificate re-verifies against a freshly rebuilt model (a
    /// rejected or absent certificate evicts the entry and re-solves).
    /// Accepted audited entries persist their certificate so warm runs
    /// stay warm.
    pub audit: bool,
    /// Record a structured solve trace ([`regalloc_obs::FunctionTrace`])
    /// for every function and attach it to the result. Off by default:
    /// the deterministic pipeline pays only a branch per hook when
    /// disabled. Trace *events* are deterministic across `--jobs` values;
    /// only the timing records vary.
    pub trace: bool,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        let solver = SolverConfig::default();
        let function_budget = solver
            .time_limit
            .saturating_mul(4)
            .max(Duration::from_secs(8));
        DriverConfig {
            target: TargetId::default(),
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            solver,
            function_budget,
            global_budget: None,
            cache: CacheMode::Memory,
            cache_limits: CacheLimits::unlimited(),
            equiv_runs: 2,
            equiv_seed: 0x0b5e55ed,
            compare_baseline: false,
            lint: false,
            revalidate_cache: true,
            warm_starts: true,
            warm_start_distance: 0.25,
            audit: false,
            trace: false,
        }
    }
}

/// The graph-coloring baseline's outcome for one function (present when
/// [`DriverConfig::compare_baseline`] is set).
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// The baseline allocation.
    pub func: Function,
    /// Its spill accounting.
    pub stats: SpillStats,
    /// Its encoded size in bytes.
    pub bytes: u64,
}

/// Per-function outcome of a batch run.
#[derive(Clone, Debug)]
pub struct FunctionResult {
    /// Function name.
    pub name: String,
    /// False for functions with 64-bit values (not attempted, as in
    /// Table 2).
    pub attempted: bool,
    /// The accepted allocation (`None` when not attempted or errored).
    pub func: Option<Function>,
    /// Spill accounting of the accepted allocation.
    pub stats: SpillStats,
    /// Ladder rung that served the function.
    pub rung: Option<Rung>,
    /// Demotion reasons recorded on the way down.
    pub reasons: Vec<ReasonCode>,
    /// Constraints in the integer program.
    pub num_constraints: usize,
    /// Decision variables in the integer program.
    pub num_vars: usize,
    /// Intermediate instructions.
    pub num_insts: usize,
    /// Branch-and-bound nodes used (0 on a cache hit).
    pub solver_nodes: u64,
    /// Simplex iterations across every LP relaxation of the solve,
    /// including pruned and abandoned nodes (the original solve's, on a
    /// cache hit).
    pub lp_iters: u64,
    /// IP solve time (zero on a cache hit; a timing field, varies).
    pub solve_time: Duration,
    /// Model build time (zero on a cache hit; a timing field, varies).
    pub build_time: Duration,
    /// Validation time across accepted candidates (zero on a cache hit;
    /// a timing field, varies).
    pub validate_time: Duration,
    /// Flight-recorder counters accumulated across every solve the
    /// ladder ran for this function (zero on a cache hit or when no IP
    /// rung was reached). Deterministic across worker counts and runs.
    pub health: SolverHealth,
    /// Encoded size of the accepted allocation, in bytes.
    pub ip_bytes: u64,
    /// Whether the solution cache served this function.
    pub cache_hit: bool,
    /// Which warm start the accepted solve consumed (the original
    /// solve's, on a cache hit).
    pub warm_start: WarmStartKind,
    /// Wall-clock budget the governor granted (full configured budget on
    /// a cache hit, which consumes none of it).
    pub granted_budget: Duration,
    /// The scheduler's constraint-count estimate.
    pub estimate: usize,
    /// Wall-clock time this function's task took (a timing field).
    pub task_time: Duration,
    /// Quality lints over the accepted allocation (populated when
    /// [`DriverConfig::lint`] is set).
    pub lints: Vec<regalloc_lint::Diagnostic>,
    /// Certificate-audit outcome (populated when [`DriverConfig::audit`]
    /// is set and the function carried an optimality claim — fresh solve
    /// or re-audited cache hit alike).
    pub audit: Option<regalloc_core::AuditSummary>,
    /// Graph-coloring comparison, when requested.
    pub baseline: Option<BaselineResult>,
    /// The structured solve trace (populated when [`DriverConfig::trace`]
    /// is set).
    pub trace: Option<FunctionTrace>,
    /// This task's metrics shard; [`run_suite`] merges shards in suite
    /// order into [`SuiteOutcome::metrics`].
    pub metrics: Metrics,
    /// Set when the ladder itself failed (effectively unreachable
    /// without fault injection).
    pub error: Option<String>,
}

impl FunctionResult {
    /// Table 2 "solved": an IP rung served the function.
    pub fn solved(&self) -> bool {
        matches!(self.rung, Some(Rung::IpOptimal) | Some(Rung::IpIncumbent))
    }

    /// Table 2 "optimal".
    pub fn solved_optimally(&self) -> bool {
        self.rung == Some(Rung::IpOptimal)
    }
}

/// Aggregate accounting for a batch run.
#[derive(Clone, Debug)]
pub struct DriverStats {
    /// Functions in the suite.
    pub functions: usize,
    /// Functions attempted (no 64-bit values).
    pub attempted: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock time for the whole suite.
    pub wall_time: Duration,
    /// Sum of per-function task times — the sequential-equivalent cost,
    /// so `cpu_time / wall_time` estimates the parallel speedup.
    pub cpu_time: Duration,
    /// Functions served from the solution cache.
    pub cache_hits: usize,
    /// Functions solved fresh.
    pub cache_misses: usize,
    /// Cache entries rejected by checksum/parse/verification.
    pub cache_rejected: usize,
    /// Fresh solves whose accepted incumbent came from an exact-match
    /// donor solution.
    pub warm_exact: usize,
    /// Fresh solves whose accepted incumbent came from a projected
    /// (nearest-shape) donor solution.
    pub warm_projected: usize,
    /// Functions served per rung, ladder order.
    pub rungs: Vec<(Rung, usize)>,
    /// Busy time per worker.
    pub worker_busy: Vec<Duration>,
}

impl DriverStats {
    /// Cache hits over attempted functions (0.0 with nothing attempted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Functions per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_time.is_zero() {
            0.0
        } else {
            self.functions as f64 / self.wall_time.as_secs_f64()
        }
    }

    /// Estimated wall-clock speedup over running the same tasks
    /// sequentially (sum of task times / wall time).
    pub fn speedup(&self) -> f64 {
        if self.wall_time.is_zero() {
            0.0
        } else {
            self.cpu_time.as_secs_f64() / self.wall_time.as_secs_f64()
        }
    }

    /// Mean busy fraction across workers.
    pub fn utilization(&self) -> f64 {
        if self.worker_busy.is_empty() || self.wall_time.is_zero() {
            return 0.0;
        }
        let total: Duration = self.worker_busy.iter().sum();
        total.as_secs_f64() / (self.wall_time.as_secs_f64() * self.worker_busy.len() as f64)
    }
}

/// A completed batch run.
#[derive(Clone, Debug)]
pub struct SuiteOutcome {
    /// Per-function results, in suite order.
    pub results: Vec<FunctionResult>,
    /// Aggregate accounting.
    pub stats: DriverStats,
    /// Per-task metric shards merged in suite order, plus suite-level
    /// gauges. Counter and histogram totals here are the authoritative
    /// aggregates (the report tables derive from this registry).
    pub metrics: Metrics,
}

pub(crate) fn not_attempted(f: &Function, estimate: usize) -> FunctionResult {
    FunctionResult {
        name: f.name().to_string(),
        attempted: false,
        func: None,
        stats: SpillStats::default(),
        rung: None,
        reasons: Vec::new(),
        num_constraints: 0,
        num_vars: 0,
        num_insts: f.num_insts(),
        solver_nodes: 0,
        lp_iters: 0,
        solve_time: Duration::ZERO,
        build_time: Duration::ZERO,
        validate_time: Duration::ZERO,
        health: SolverHealth::default(),
        ip_bytes: 0,
        cache_hit: false,
        warm_start: WarmStartKind::None,
        granted_budget: Duration::ZERO,
        estimate,
        task_time: Duration::ZERO,
        lints: Vec::new(),
        audit: None,
        baseline: None,
        trace: None,
        metrics: Metrics::default(),
        error: None,
    }
}

/// Render the suite's traces as JSONL: every function's deterministic
/// event records first (suite order), then every timing record. Consumers
/// strip the timing section with the single predicate
/// `"type" == "timing"` — that is what the `--jobs` determinism guarantee
/// covers.
pub fn trace_jsonl(out: &SuiteOutcome) -> String {
    let mut s = String::new();
    for r in &out.results {
        if let Some(t) = &r.trace {
            jsonl_events(&mut s, t);
        }
    }
    for r in &out.results {
        if let Some(t) = &r.trace {
            jsonl_timings(&mut s, t);
        }
    }
    s
}

/// The `--profile` self-profiling report: per-phase wall-time, cache and
/// warm-start traffic, and the degradation ladder by rung and reason.
/// Requires [`DriverConfig::trace`] for the phase table (phase times ride
/// on the traces); the rest comes from the merged metrics registry.
pub fn profile_report(out: &SuiteOutcome) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let mut totals: Vec<(Phase, f64, usize)> = Phase::ALL.iter().map(|&p| (p, 0.0, 0)).collect();
    for r in &out.results {
        if let Some(t) = &r.trace {
            for (p, d) in &t.phase_times {
                let slot = totals.iter_mut().find(|(x, _, _)| x == p).unwrap();
                slot.1 += d.as_secs_f64();
                slot.2 += 1;
            }
        }
    }
    let cpu = out.stats.cpu_time.as_secs_f64();
    if totals.iter().any(|(_, secs, _)| *secs > 0.0) {
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>7} {:>6}",
            "phase", "seconds", "share", "fns"
        );
        for (p, secs, fns) in &totals {
            if *fns > 0 {
                let _ = writeln!(
                    s,
                    "{:<16} {:>10.3} {:>6.1}% {:>6}",
                    p.name(),
                    secs,
                    100.0 * secs / cpu.max(1e-9),
                    fns
                );
            }
        }
        let _ = writeln!(
            s,
            "(presolve and simplex are sub-phases of solve; shares overlap)"
        );
        s.push('\n');
    }
    let st = &out.stats;
    let _ = writeln!(
        s,
        "cache: {} hits / {} misses ({:.0}% hit rate), {} rejected",
        st.cache_hits,
        st.cache_misses,
        st.hit_rate() * 100.0,
        st.cache_rejected
    );
    let cold = st
        .cache_misses
        .saturating_sub(st.warm_exact + st.warm_projected);
    let _ = writeln!(
        s,
        "warm starts: {} exact / {} projected / {} cold",
        st.warm_exact, st.warm_projected, cold
    );
    let rungs: Vec<String> = st
        .rungs
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(r, n)| format!("{} {}", r.name(), n))
        .collect();
    let _ = writeln!(s, "rungs: {}", rungs.join("  "));
    // Certificate-audit traffic comes from the merged metrics registry
    // (per-task shards summed in suite order), so the line is identical
    // for any `--jobs` value.
    let certs_checked = out
        .metrics
        .counter("regalloc_certificates_checked_total", &[]);
    let certs_rejected = out
        .metrics
        .counter("regalloc_certificates_rejected_total", &[]);
    if certs_checked > 0 || certs_rejected > 0 {
        let audit_secs: f64 = out
            .results
            .iter()
            .filter_map(|r| r.trace.as_ref())
            .flat_map(|t| &t.phase_times)
            .filter(|(p, _)| *p == Phase::Audit)
            .map(|(_, d)| d.as_secs_f64())
            .sum();
        let _ = writeln!(
            s,
            "audit: {certs_checked} certificates checked / {certs_rejected} rejected, {audit_secs:.3}s"
        );
    }
    let demotions = out
        .metrics
        .counter_by_label("regalloc_demotions_total", "reason");
    if !demotions.is_empty() {
        let _ = writeln!(s, "demotions by reason:");
        for (reason, n) in demotions {
            let _ = writeln!(s, "  {reason:<26} {n}");
        }
    }
    // Flight-recorder totals: the solver-internal counters the simplex
    // and branch-and-bound layers record on every solve.
    let pivots = out.metrics.counter("regalloc_solver_pivots_total", &[]);
    if pivots > 0 {
        let _ = writeln!(
            s,
            "solver: {pivots} pivots ({} degenerate), {} ratio-test ties, {} presolve eliminations",
            out.metrics
                .counter("regalloc_solver_degenerate_pivots_total", &[]),
            out.metrics.counter("regalloc_solver_ratio_ties_total", &[]),
            out.metrics
                .counter("regalloc_presolve_eliminations_total", &[]),
        );
    }
    // Exact nearest-rank percentiles from the merged quantile sketches.
    // Solver families are deterministic across `--jobs`; task-seconds is
    // wall-clock and varies run to run.
    let dists: &[(&str, bool)] = &[
        ("regalloc_solver_nodes_dist", false),
        ("regalloc_solver_lp_iters_dist", false),
        ("regalloc_solver_pivots_dist", false),
        ("regalloc_model_constraints_dist", false),
        ("regalloc_task_seconds_dist", true),
    ];
    if dists
        .iter()
        .any(|(f, _)| out.metrics.sketch(f, &[]).is_some())
    {
        s.push('\n');
        let _ = writeln!(
            s,
            "{:<32} {:>9} {:>9} {:>9}",
            "distribution", "p50", "p95", "p99"
        );
        for (fam, is_seconds) in dists {
            if let Some(sk) = out.metrics.sketch(fam, &[]) {
                let q = |p: f64| sk.quantile(p).unwrap_or(0.0);
                if *is_seconds {
                    let _ = writeln!(
                        s,
                        "{:<32} {:>9.4} {:>9.4} {:>9.4}",
                        fam,
                        q(0.5),
                        q(0.95),
                        q(0.99)
                    );
                } else {
                    let _ = writeln!(
                        s,
                        "{:<32} {:>9.0} {:>9.0} {:>9.0}",
                        fam,
                        q(0.5),
                        q(0.95),
                        q(0.99)
                    );
                }
            }
        }
    }
    if let Some(workers) = out.metrics.gauge("regalloc_pool_workers", &[]) {
        let _ = writeln!(
            s,
            "pool: {workers} workers, {} steals, {:.3}s queued, {:.0}% utilized",
            out.metrics
                .gauge("regalloc_pool_steals", &[])
                .unwrap_or(0.0),
            out.metrics
                .gauge("regalloc_pool_queue_wait_seconds", &[])
                .unwrap_or(0.0),
            out.stats.utilization() * 100.0
        );
    }
    s
}

/// Allocate every function of a suite through the parallel service.
///
/// Results come back in suite order; see the module docs for the
/// determinism guarantee. The machine model is resolved from
/// [`DriverConfig::target`] (the paper's Pentium x86 model by default —
/// the same one the bench harness uses).
pub fn run_suite(funcs: &[Function], cfg: &DriverConfig) -> SuiteOutcome {
    // The service freezes the donor snapshot once, before any worker
    // runs: entries stored *during* this run never donate, so warm-start
    // selection is independent of worker count and completion order (the
    // determinism guarantee above).
    let svc = AllocationService::new(cfg.clone());
    let sched = schedule::plan(funcs);
    let governor = BudgetGovernor::new(
        cfg.global_budget,
        cfg.function_budget,
        cfg.jobs,
        funcs.len(),
    );

    let run_one = |i: usize, f: &Function| -> FunctionResult {
        svc.allocate_one(f, sched.estimates[i], &governor, &RequestOptions::default())
    };
    let start = Instant::now();
    let (results, pool_stats) = pool::run_indexed(cfg.jobs, funcs, &sched.order, run_one);
    let wall_time = start.elapsed();

    let attempted = results.iter().filter(|r| r.attempted).count();
    let cache_hits = results.iter().filter(|r| r.cache_hit).count();
    let cache_misses = attempted - cache_hits;
    let mut rungs: Vec<(Rung, usize)> = Rung::ALL.iter().map(|&r| (r, 0)).collect();
    for r in &results {
        if let Some(rung) = r.rung {
            rungs.iter_mut().find(|(x, _)| *x == rung).unwrap().1 += 1;
        }
    }
    let cpu_time = results.iter().map(|r| r.task_time).sum();
    let fresh_warm = |kind: WarmStartKind| {
        results
            .iter()
            .filter(|r| !r.cache_hit && r.warm_start == kind)
            .count()
    };
    let stats = DriverStats {
        functions: funcs.len(),
        attempted,
        jobs: cfg.jobs.max(1),
        wall_time,
        cpu_time,
        cache_hits,
        cache_misses,
        cache_rejected: svc.cache().map_or(0, |c| c.rejected()),
        warm_exact: fresh_warm(WarmStartKind::Exact),
        warm_projected: fresh_warm(WarmStartKind::Projected),
        rungs,
        worker_busy: pool_stats.busy.clone(),
    };
    let mut metrics = Metrics::new();
    for r in &results {
        metrics.merge(&r.metrics);
    }
    // Lookup-level rejections ("rejected" shard events) miss entries the
    // cache itself dropped during parse/realize; the cache's own counter
    // is authoritative, recorded as a suite-level gauge.
    metrics.set_gauge("regalloc_cache_rejected", &[], stats.cache_rejected as f64);
    metrics.set_gauge("regalloc_suite_functions", &[], funcs.len() as f64);
    metrics.set_gauge("regalloc_jobs", &[], stats.jobs as f64);
    // Thread-pool telemetry. Like every wall-clock family, these gauges
    // are timing-class: they vary with worker count and scheduling, and
    // determinism consumers strip the whole `regalloc_pool_` prefix.
    metrics.set_gauge("regalloc_pool_workers", &[], pool_stats.busy.len() as f64);
    let steals: usize = pool_stats.steals_per_worker.iter().sum();
    metrics.set_gauge("regalloc_pool_steals", &[], steals as f64);
    let queue_wait: Duration = pool_stats.queue_wait_per_worker.iter().sum();
    metrics.set_gauge(
        "regalloc_pool_queue_wait_seconds",
        &[],
        queue_wait.as_secs_f64(),
    );
    for w in 0..pool_stats.busy.len() {
        let id = w.to_string();
        let labels: &[(&str, &str)] = &[("worker", id.as_str())];
        metrics.set_gauge(
            "regalloc_pool_worker_busy_seconds",
            labels,
            pool_stats.busy[w].as_secs_f64(),
        );
        metrics.set_gauge(
            "regalloc_pool_worker_tasks",
            labels,
            pool_stats.tasks_per_worker[w] as f64,
        );
        metrics.set_gauge(
            "regalloc_pool_worker_steals",
            labels,
            pool_stats.steals_per_worker[w] as f64,
        );
        metrics.set_gauge(
            "regalloc_pool_worker_queue_wait_seconds",
            labels,
            pool_stats.queue_wait_per_worker[w].as_secs_f64(),
        );
    }
    SuiteOutcome {
        results,
        stats,
        metrics,
    }
}
