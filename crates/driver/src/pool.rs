//! A hand-rolled work-stealing thread pool over `std::thread::scope`.
//!
//! The workspace builds offline — no `rayon` — so the driver brings its
//! own pool, specialised for the shape of a batch allocation run: the
//! full task list is known up front, tasks are independent, and per-task
//! cost varies by orders of magnitude (a five-instruction xlisp helper vs
//! a cc1 tail function). The classic work-stealing layout fits:
//!
//! * one double-ended queue per worker, seeded round-robin with the
//!   caller's task order, so a cheapest-first schedule stays
//!   cheapest-first within every worker;
//! * a worker pops from the **front** of its own deque (preserving the
//!   scheduler's order locally) and, when empty, steals from the **back**
//!   of a victim's deque — grabbing the victim's most expensive pending
//!   task, which amortises the steal and rebalances exactly when the
//!   size-skewed tail would otherwise serialise the run;
//! * no task ever spawns another, so termination is a single sweep: a
//!   worker exits when every deque is empty.
//!
//! Determinism: results are returned in *item-index order* regardless of
//! which worker ran what or when, so callers observe identical output for
//! any worker count (provided the tasks themselves are deterministic).

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Per-run pool accounting, reported through `DriverStats`.
#[derive(Clone, Debug)]
pub struct PoolStats {
    /// Wall-clock time of the whole `run_indexed` call.
    pub wall: Duration,
    /// Time each worker spent executing tasks (index = worker id).
    pub busy: Vec<Duration>,
    /// Tasks executed per worker (index = worker id). The imbalance
    /// between this and an even split is what stealing absorbed.
    pub tasks_per_worker: Vec<usize>,
    /// Tasks each worker claimed from a *victim's* deque rather than its
    /// own (index = worker id) — how often rebalancing actually fired.
    pub steals_per_worker: Vec<usize>,
    /// Time each claimed task spent queued before a worker popped it
    /// (run start to pop, summed per claiming worker). All tasks are
    /// seeded up front, so this is exact, not an approximation.
    pub queue_wait_per_worker: Vec<Duration>,
}

impl PoolStats {
    /// Mean fraction of the wall clock the workers spent busy (1.0 =
    /// perfectly utilised).
    pub fn utilization(&self) -> f64 {
        if self.busy.is_empty() || self.wall.is_zero() {
            return 0.0;
        }
        let total: Duration = self.busy.iter().sum();
        total.as_secs_f64() / (self.wall.as_secs_f64() * self.busy.len() as f64)
    }
}

/// Pop a task: own deque first (front), then steal (back) sweeping the
/// victims from `w + 1` around the ring. The flag reports whether the
/// task came from a victim (a steal) rather than the worker's own deque.
fn next_task(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<(usize, bool)> {
    if let Some(i) = deques[w].lock().unwrap().pop_front() {
        return Some((i, false));
    }
    let n = deques.len();
    for off in 1..n {
        if let Some(i) = deques[(w + off) % n].lock().unwrap().pop_back() {
            return Some((i, true));
        }
    }
    None
}

/// Run `f(i, &items[i])` for every index in `order` across `jobs`
/// workers and return the results in item-index order.
///
/// `order` must be a permutation of `0..items.len()`; it controls the
/// *dispatch* order (the scheduler's priority), not the result order.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the item indices, or if a
/// task panics (the panic is propagated once the remaining workers have
/// drained their queues).
pub fn run_indexed<T, R, F>(jobs: usize, items: &[T], order: &[usize], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    assert_eq!(order.len(), n, "order must cover every item exactly once");
    let mut seen = vec![false; n];
    for &i in order {
        assert!(i < n && !seen[i], "order must be a permutation");
        seen[i] = true;
    }

    let jobs = jobs.max(1).min(n.max(1));
    let start = Instant::now();
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (k, &i) in order.iter().enumerate() {
        deques[k % jobs].lock().unwrap().push_back(i);
    }

    struct TaskReport<R> {
        index: usize,
        worker: usize,
        result: R,
        busy: Duration,
        stolen: bool,
        queue_wait: Duration,
    }
    let (tx, rx) = mpsc::channel::<TaskReport<R>>();
    std::thread::scope(|s| {
        for w in 0..jobs {
            let tx = tx.clone();
            let deques = &deques;
            let f = &f;
            s.spawn(move || {
                while let Some((i, stolen)) = next_task(deques, w) {
                    // Every task is seeded before the workers start, so
                    // run-start-to-pop is exactly its time in the queue.
                    let queue_wait = start.elapsed();
                    let t0 = Instant::now();
                    let r = f(i, &items[i]);
                    // The receiver outlives the scope; a send can only
                    // fail if the parent thread died, in which case the
                    // panic is already propagating.
                    let _ = tx.send(TaskReport {
                        index: i,
                        worker: w,
                        result: r,
                        busy: t0.elapsed(),
                        stolen,
                        queue_wait,
                    });
                }
            });
        }
    });
    drop(tx);

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut busy = vec![Duration::ZERO; jobs];
    let mut tasks_per_worker = vec![0usize; jobs];
    let mut steals_per_worker = vec![0usize; jobs];
    let mut queue_wait_per_worker = vec![Duration::ZERO; jobs];
    for t in rx {
        results[t.index] = Some(t.result);
        busy[t.worker] += t.busy;
        tasks_per_worker[t.worker] += 1;
        if t.stolen {
            steals_per_worker[t.worker] += 1;
        }
        queue_wait_per_worker[t.worker] += t.queue_wait;
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("every index in the permutation produced a result"))
        .collect();
    (
        results,
        PoolStats {
            wall: start.elapsed(),
            busy,
            tasks_per_worker,
            steals_per_worker,
            queue_wait_per_worker,
        },
    )
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct ServiceShared {
    /// One deque per worker, same steal discipline as [`run_indexed`]:
    /// own front first, then victims' backs.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Count of pushed-but-unclaimed jobs; the condvar's guarded state.
    pending: Mutex<usize>,
    cond: Condvar,
    shutting_down: AtomicBool,
    active: AtomicUsize,
    executed: AtomicUsize,
    panicked: AtomicUsize,
}

/// The long-lived sibling of [`run_indexed`]: the same per-worker-deque /
/// steal-from-the-back layout, but accepting jobs continuously instead of
/// a frozen task list — the daemon multiplexes network requests onto it.
///
/// Robustness properties the batch pool never needed:
///
/// * **panic isolation** — a job that panics is counted
///   ([`ServicePool::panicked`]) and its worker keeps serving; a panic
///   can never take the pool down (callers typically also catch panics
///   themselves to turn them into per-request error responses — this is
///   the second line of defense);
/// * **graceful shutdown** — [`ServicePool::shutdown`] lets every queued
///   job run before joining the workers, so an accepted request is never
///   dropped on the floor;
/// * the queue itself is unbounded: *admission control belongs to the
///   caller* (the daemon rejects with `BUSY` before submitting), so the
///   pool never has to make a load-shedding decision it lacks context
///   for.
pub struct ServicePool {
    shared: Arc<ServiceShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next: AtomicUsize,
}

impl ServicePool {
    /// Spin up `jobs` long-lived workers (0 is treated as 1).
    pub fn new(jobs: usize) -> ServicePool {
        let jobs = jobs.max(1);
        let shared = Arc::new(ServiceShared {
            deques: (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: Mutex::new(0),
            cond: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
        });
        let workers = (0..jobs)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("regalloc-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        ServicePool {
            shared,
            workers: Mutex::new(workers),
            next: AtomicUsize::new(0),
        }
    }

    /// Queue a job. Jobs are distributed round-robin across the worker
    /// deques; an idle worker steals from the back of a loaded one, so a
    /// skewed arrival pattern still uses every worker.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.deques.len();
        self.shared.deques[w]
            .lock()
            .unwrap()
            .push_back(Box::new(job));
        *self.shared.pending.lock().unwrap() += 1;
        self.shared.cond.notify_one();
    }

    /// Jobs queued but not yet claimed by a worker.
    pub fn queued(&self) -> usize {
        *self.shared.pending.lock().unwrap()
    }

    /// Jobs currently executing.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Jobs completed (including panicked ones).
    pub fn executed(&self) -> usize {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs that panicked (isolated, worker survived).
    pub fn panicked(&self) -> usize {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// True when nothing is queued or executing.
    pub fn is_idle(&self) -> bool {
        self.queued() == 0 && self.active() == 0
    }

    /// Drain the queue (every already-submitted job runs) and join the
    /// workers. Idempotent; jobs submitted after shutdown never run.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &ServiceShared, w: usize) {
    loop {
        // Claim a pending job (or learn we are done).
        {
            let mut pending = shared.pending.lock().unwrap();
            loop {
                if *pending > 0 {
                    *pending -= 1;
                    break;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .cond
                    .wait_timeout(pending, Duration::from_millis(50))
                    .unwrap();
                pending = guard;
            }
        }
        // The claim guarantees a job exists in *some* deque; pop own
        // front, then steal from victims' backs, retrying on the rare
        // race where another claimant reached the same deque first.
        let job = loop {
            if let Some(j) = pop_job(&shared.deques, w) {
                break j;
            }
            std::thread::yield_now();
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        if std::panic::catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panicked.fetch_add(1, Ordering::SeqCst);
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.executed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Pop a job: own deque first (front), then steal (back) sweeping the
/// victims from `w + 1` around the ring — the [`next_task`] discipline
/// over owned jobs instead of indices.
fn pop_job(deques: &[Mutex<VecDeque<Job>>], w: usize) -> Option<Job> {
    if let Some(j) = deques[w].lock().unwrap().pop_front() {
        return Some(j);
    }
    let n = deques.len();
    for off in 1..n {
        if let Some(j) = deques[(w + off) % n].lock().unwrap().pop_back() {
            return Some(j);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let order: Vec<usize> = (0..items.len()).rev().collect();
        let seq = run_indexed(1, &items, &order, |_, &x| x * x).0;
        for jobs in [2, 4, 8] {
            let par = run_indexed(jobs, &items, &order, |_, &x| x * x).0;
            assert_eq!(par, seq, "jobs={jobs}");
        }
        assert_eq!(seq[10], 100);
    }

    #[test]
    fn skewed_costs_are_stolen_across_workers() {
        // The first task parks its worker until the second worker has
        // started a task (bounded wait, so a starved pool still ends the
        // test); the remaining cheap tasks must then flow to the other
        // worker or the run serialises. This is deterministic where a
        // pure cost skew is not: under CPU contention the second worker
        // can spawn late enough to miss an entire skewed run.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<u64> = (0..40).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let started = AtomicUsize::new(0);
        let (res, stats) = run_indexed(2, &items, &order, |i, &x| {
            started.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                let t0 = std::time::Instant::now();
                while started.load(Ordering::SeqCst) < 2
                    && t0.elapsed() < std::time::Duration::from_secs(5)
                {
                    std::thread::yield_now();
                }
            }
            let mut acc = x;
            for k in 0..40_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        assert_eq!(res.len(), 40);
        let total: usize = stats.tasks_per_worker.iter().sum();
        assert_eq!(total, 40);
        assert!(
            stats.tasks_per_worker.iter().all(|&t| t > 0),
            "both workers ran tasks: {:?}",
            stats.tasks_per_worker
        );
    }

    #[test]
    fn steals_and_queue_wait_are_accounted() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<u64> = (0..16).collect();
        let order: Vec<usize> = (0..items.len()).collect();
        let started = AtomicUsize::new(0);
        let (res, stats) = run_indexed(2, &items, &order, |i, &x| {
            started.fetch_add(1, Ordering::SeqCst);
            if i == 0 {
                // Park the first worker until every other task has
                // started — the second worker can only get there by
                // stealing the parked worker's backlog (bounded wait so
                // a starved pool still ends the test).
                let t0 = std::time::Instant::now();
                while started.load(Ordering::SeqCst) < items.len()
                    && t0.elapsed() < std::time::Duration::from_secs(5)
                {
                    std::thread::yield_now();
                }
            }
            x
        });
        assert_eq!(res.len(), 16);
        assert_eq!(stats.steals_per_worker.len(), 2);
        assert_eq!(stats.queue_wait_per_worker.len(), 2);
        let steals: usize = stats.steals_per_worker.iter().sum();
        assert!(
            steals > 0,
            "second worker stole the parked backlog: {:?}",
            stats.steals_per_worker
        );
    }

    #[test]
    fn empty_input_and_oversized_pool() {
        let items: Vec<u32> = Vec::new();
        let (res, _) = run_indexed(8, &items, &[], |_, &x| x);
        assert!(res.is_empty());
        let one = [7u32];
        let (res, stats) = run_indexed(64, &one, &[0], |_, &x| x + 1);
        assert_eq!(res, vec![8]);
        assert_eq!(stats.busy.len(), 1, "pool never exceeds the task count");
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_duplicate_order_entries() {
        let items = [1u32, 2];
        run_indexed(2, &items, &[0, 0], |_, &x| x);
    }

    #[test]
    fn service_pool_runs_every_submitted_job() {
        let pool = ServicePool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(pool.executed(), 64);
        assert_eq!(pool.panicked(), 0);
        assert!(pool.is_idle());
    }

    #[test]
    fn service_pool_isolates_panics_and_keeps_serving() {
        let pool = ServicePool::new(2);
        let ok = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let ok = Arc::clone(&ok);
            pool.submit(move || {
                if i % 4 == 0 {
                    panic!("injected job panic");
                }
                ok.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(pool.panicked(), 5);
        assert_eq!(ok.load(Ordering::SeqCst), 15);
        assert_eq!(pool.executed(), 20);
    }

    #[test]
    fn service_pool_shutdown_drains_queued_jobs_first() {
        // One worker, many queued jobs: shutdown must let the backlog run.
        let pool = ServicePool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_micros(200));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32, "no accepted job dropped");
    }
}
